// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one of the paper's figures by sweeping
// the corresponding parameters through the execution-driven cluster
// simulation and printing the same series the paper plots. Run lengths
// are env-tunable:
//
//   CATFISH_DATASET   dataset cardinality     (default 2,000,000 — §V-B)
//   CATFISH_REQUESTS  requests per client     (default 300; paper: 10,000)
//   CATFISH_QUICK=1   200k dataset, 100 requests — CI-speed smoke run
//
// Shapes are stable across these settings; the defaults keep the full
// suite within minutes on one core.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/cluster_sim.h"
#include "rtree/bulk_load.h"
#include "tcpkit/stats_server.h"
#include "telemetry/assemble.h"
#include "telemetry/events.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "workload/generators.h"

namespace catfish::bench {

struct BenchEnv {
  size_t dataset = 2'000'000;
  uint64_t requests = 300;
  uint64_t seed = 20260705;
  /// JSONL sink for per-cell telemetry ("-" = stdout, "" = disabled).
  /// Set with --telemetry-json <path> (or CATFISH_TELEMETRY_JSON).
  std::string telemetry_json;
  /// JSONL sink for per-window timelines ("" = disabled). Set with
  /// --timeline-json <path> (or CATFISH_TIMELINE_JSON). Each simulated
  /// cell then runs with a MetricsSampler on virtual time and appends
  /// one line per closed window (offload share, utilization, rates).
  std::string timeline_json;
  /// Virtual-time window length for --timeline-json, microseconds.
  /// Set with --timeline-window-us <n> (or CATFISH_TIMELINE_WINDOW_US).
  uint64_t timeline_window_us = 200;
  /// When >= 0, serve live /metrics, /snapshot, /timeline and /events
  /// on 127.0.0.1:<port> for the duration of the bench (0 = ephemeral).
  /// Set with --stats-port <n> (or CATFISH_STATS_PORT).
  int stats_port = -1;
  /// Doorbell-batching override for the ablation sweep (EXPERIMENTS.md):
  /// -1 = per-scheme default (baselines per-WR, Catfish batched at 16),
  ///  0 = force batching off, N > 0 = force batching on with chain
  /// limit N. Set with --doorbell-batch <n> (or CATFISH_DOORBELL_BATCH).
  int doorbell_batch = -1;
  /// Chrome/Perfetto trace-event sink ("-" = stdout, "" = disabled).
  /// Set with --trace-json <path> (or CATFISH_TRACE_JSON). Each cell
  /// then samples search span trees on virtual time; all retained
  /// traces are written as one {"traceEvents":[...]} document at exit.
  std::string trace_json;
  /// Sample every Nth search for --trace-json. Set with
  /// --trace-sample-every <n> (or CATFISH_TRACE_SAMPLE_EVERY).
  uint64_t trace_sample_every = 64;

  static BenchEnv Load(int argc = 0, char* const* argv = nullptr) {
    BenchEnv env;
    if (const char* q = std::getenv("CATFISH_QUICK"); q && q[0] == '1') {
      env.dataset = 200'000;
      env.requests = 100;
    }
    if (const char* d = std::getenv("CATFISH_DATASET")) {
      env.dataset = std::strtoull(d, nullptr, 10);
    }
    if (const char* r = std::getenv("CATFISH_REQUESTS")) {
      env.requests = std::strtoull(r, nullptr, 10);
    }
    if (const char* j = std::getenv("CATFISH_TELEMETRY_JSON")) {
      env.telemetry_json = j;
    }
    if (const char* t = std::getenv("CATFISH_TIMELINE_JSON")) {
      env.timeline_json = t;
    }
    if (const char* w = std::getenv("CATFISH_TIMELINE_WINDOW_US")) {
      env.timeline_window_us = std::strtoull(w, nullptr, 10);
    }
    if (const char* p = std::getenv("CATFISH_STATS_PORT")) {
      env.stats_port = std::atoi(p);
    }
    if (const char* b = std::getenv("CATFISH_DOORBELL_BATCH")) {
      env.doorbell_batch = std::atoi(b);
    }
    if (const char* tj = std::getenv("CATFISH_TRACE_JSON")) {
      env.trace_json = tj;
    }
    if (const char* ts = std::getenv("CATFISH_TRACE_SAMPLE_EVERY")) {
      env.trace_sample_every = std::strtoull(ts, nullptr, 10);
    }
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--telemetry-json") == 0 && i + 1 < argc) {
        env.telemetry_json = argv[++i];
      } else if (std::strncmp(arg, "--telemetry-json=", 17) == 0) {
        env.telemetry_json = arg + 17;
      } else if (std::strcmp(arg, "--timeline-json") == 0 && i + 1 < argc) {
        env.timeline_json = argv[++i];
      } else if (std::strncmp(arg, "--timeline-json=", 16) == 0) {
        env.timeline_json = arg + 16;
      } else if (std::strcmp(arg, "--timeline-window-us") == 0 &&
                 i + 1 < argc) {
        env.timeline_window_us = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(arg, "--stats-port") == 0 && i + 1 < argc) {
        env.stats_port = std::atoi(argv[++i]);
      } else if (std::strcmp(arg, "--doorbell-batch") == 0 && i + 1 < argc) {
        env.doorbell_batch = std::atoi(argv[++i]);
      } else if (std::strcmp(arg, "--trace-json") == 0 && i + 1 < argc) {
        env.trace_json = argv[++i];
      } else if (std::strncmp(arg, "--trace-json=", 13) == 0) {
        env.trace_json = arg + 13;
      } else if (std::strcmp(arg, "--trace-sample-every") == 0 &&
                 i + 1 < argc) {
        env.trace_sample_every = std::strtoull(argv[++i], nullptr, 10);
      }
    }
    if (env.timeline_window_us == 0) env.timeline_window_us = 200;
    if (env.trace_sample_every == 0) env.trace_sample_every = 64;
    return env;
  }
};

/// A built tree plus a pristine snapshot for insert-workload restores.
struct Testbed {
  std::unique_ptr<rtree::NodeArena> arena;
  std::unique_ptr<rtree::RStarTree> tree;
  rtree::NodeArena::Snapshot pristine;

  void Reset() {
    arena->Restore(pristine);
    tree = std::make_unique<rtree::RStarTree>(rtree::RStarTree::Attach(*arena));
  }
};

inline size_t ArenaChunksFor(size_t dataset) {
  // ~19 entries per packed leaf plus internals and insert headroom.
  const size_t nodes = dataset / 12 + 4096;
  size_t chunks = 2;
  while (chunks < nodes) chunks <<= 1;
  return chunks;
}

/// The §V-B dataset: `n` rectangles, edges in (0, 1e-4].
inline Testbed MakeUniformTestbed(size_t n, uint64_t seed) {
  Testbed tb;
  tb.arena =
      std::make_unique<rtree::NodeArena>(rtree::kChunkSize, ArenaChunksFor(n));
  const auto items = workload::UniformDataset(n, 1e-4, seed);
  tb.tree = std::make_unique<rtree::RStarTree>(
      rtree::BulkLoad(*tb.arena, items));
  tb.pristine = tb.arena->TakeSnapshot();
  return tb;
}

/// The §V-C dataset: synthetic rea02 street segments in insertion order.
inline Testbed MakeRea02Testbed(const workload::Rea02Dataset& ds) {
  Testbed tb;
  tb.arena = std::make_unique<rtree::NodeArena>(
      rtree::kChunkSize, ArenaChunksFor(ds.insert_order.size()));
  tb.tree = std::make_unique<rtree::RStarTree>(
      rtree::BulkLoad(*tb.arena, ds.insert_order));
  tb.pristine = tb.arena->TakeSnapshot();
  return tb;
}

/// Per-scheme defaults mirroring §V: the FaRM baselines poll and read
/// one node at a time; Catfish is event-driven with multi-issue.
inline model::ClusterConfig MakeConfig(model::Scheme scheme, size_t clients,
                                       const workload::RequestGen::Config& w,
                                       const BenchEnv& env) {
  model::ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.num_clients = clients;
  cfg.requests_per_client = env.requests;
  cfg.workload = w;
  cfg.seed = env.seed;
  if (scheme == model::Scheme::kFastMessaging ||
      scheme == model::Scheme::kRdmaOffloading) {
    cfg.notify = NotifyMode::kPolling;  // FaRM-style baseline
    cfg.multi_issue = false;
    cfg.doorbell_batching = false;  // per-WR doorbells, per-CQE reaps
  } else {
    cfg.notify = NotifyMode::kEventDriven;
    cfg.multi_issue = true;
    cfg.doorbell_batching = true;
  }
  // Ablation override (EXPERIMENTS.md batching sweep): 0 forces the
  // unbatched issue path, N > 0 forces batching with chain limit N.
  if (env.doorbell_batch == 0) {
    cfg.doorbell_batching = false;
  } else if (env.doorbell_batch > 0) {
    cfg.doorbell_batching = true;
    cfg.doorbell_batch_limit = static_cast<uint32_t>(env.doorbell_batch);
  }
  return cfg;
}

/// Runs one (scheme, clients, workload) cell; insert workloads restore
/// the pristine tree first so every cell starts from the same dataset.
inline model::RunResult RunOne(Testbed& tb, model::Scheme s, size_t clients,
                               const workload::RequestGen::Config& w,
                               const BenchEnv& env) {
  if (w.insert_ratio > 0.0) tb.Reset();
  auto cfg = MakeConfig(s, clients, w, env);
  model::ClusterSim sim(*tb.tree, cfg);
  return sim.Run();
}

inline const char* ScaleLabel(const workload::RequestGen::Config& w) {
  switch (w.dist) {
    case workload::RequestGen::ScaleDist::kPowerLaw: return "power-law";
    case workload::RequestGen::ScaleDist::kRea02: return "rea02";
    case workload::RequestGen::ScaleDist::kFixed:
    default: return w.scale <= 1e-4 ? "0.00001" : "0.01";
  }
}

/// Per-cell telemetry sink plus per-window timeline sink.
///
/// When the env names a --telemetry-json path, Run() resets the global
/// metrics registry before each cell, runs it, and appends one JSON
/// line holding the cell coordinates, throughput, per-path latency
/// histograms, adaptive counters and the full metric snapshot
/// (rdma.*, catfish.*, ...).
///
/// When the env names a --timeline-json path, each cell additionally
/// runs with a MetricsSampler ticked on virtual time and appends one
/// line per closed window: the cell coordinates, the derived offload
/// share / server utilization pair (the paper's Fig 12 dynamics), and
/// the full window document.
///
/// When the env names a --trace-json path, each cell samples every Nth
/// search into a span tree on virtual time (ClusterConfig::
/// trace_sample_every); at destruction all retained traces across all
/// cells are written as one Chrome/Perfetto {"traceEvents":[...]}
/// document with critical-path spans marked args.critical=1. With no
/// path set it is a plain RunOne.
class CellExporter {
 public:
  CellExporter(const char* figure, const BenchEnv& env)
      : figure_(figure), trace_path_(env.trace_json) {
    if (!env.telemetry_json.empty()) {
      out_ = std::make_unique<telemetry::JsonLinesWriter>(env.telemetry_json);
      if (!out_->ok()) {
        std::fprintf(stderr, "warning: cannot open '%s' for telemetry JSON\n",
                     env.telemetry_json.c_str());
        out_.reset();
      }
    }
    if (!env.timeline_json.empty()) {
      timeline_out_ =
          std::make_unique<telemetry::JsonLinesWriter>(env.timeline_json);
      if (!timeline_out_->ok()) {
        std::fprintf(stderr, "warning: cannot open '%s' for timeline JSON\n",
                     env.timeline_json.c_str());
        timeline_out_.reset();
      }
    }
  }

  ~CellExporter() {
    if (trace_path_.empty() || traces_.empty()) return;
    const std::string doc = telemetry::TracesToChromeJson(
        std::span<const std::shared_ptr<telemetry::Trace>>(traces_));
    std::FILE* f = trace_path_ == "-" ? stdout
                                      : std::fopen(trace_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open '%s' for trace JSON\n",
                   trace_path_.c_str());
      return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    if (f != stdout) std::fclose(f);
  }

  bool enabled() const noexcept { return out_ != nullptr; }

  /// Standard per-scheme cell (MakeConfig defaults). `variant` labels
  /// ablation rows that vary more than (scheme, clients, workload).
  model::RunResult Run(Testbed& tb, model::Scheme s, size_t clients,
                       const workload::RequestGen::Config& w,
                       const BenchEnv& env, const char* variant = nullptr) {
    return RunConfig(tb, MakeConfig(s, clients, w, env), env, variant);
  }

  /// Fully custom cell for benches that mutate ClusterConfig knobs
  /// (notify mode, multi-issue, adaptive parameters, ...).
  model::RunResult RunConfig(Testbed& tb, model::ClusterConfig cfg,
                             const BenchEnv& env,
                             const char* variant = nullptr) {
    if (cfg.workload.insert_ratio > 0.0) tb.Reset();
    if (!trace_path_.empty()) {
      cfg.trace_sample_every = env.trace_sample_every;
      cfg.trace_retain = 64;
    }
    if (!out_ && !timeline_out_ && trace_path_.empty()) {
      model::ClusterSim sim(*tb.tree, cfg);
      return sim.Run();
    }
    telemetry::Registry::Global().Reset();
    std::unique_ptr<telemetry::MetricsSampler> sampler;
    if (timeline_out_) {
      telemetry::SamplerConfig scfg;
      scfg.window_us = env.timeline_window_us;
      scfg.retain = 1 << 16;
      sampler = std::make_unique<telemetry::MetricsSampler>(
          &telemetry::Registry::Global(), scfg);
      cfg.sampler = sampler.get();
    }
    model::ClusterSim sim(*tb.tree, cfg);
    const model::RunResult r = sim.Run();
    if (out_) WriteCell(r, cfg, env, variant);
    if (sampler) WriteTimeline(*sampler, cfg, env, variant);
    traces_.insert(traces_.end(), r.traces.begin(), r.traces.end());
    return r;
  }

 private:
  void WriteCellCoords(telemetry::JsonWriter& j,
                       const model::ClusterConfig& cfg, const BenchEnv& env,
                       const char* variant) {
    j.Key("figure").Value(figure_);
    j.Key("scheme").Value(model::SchemeName(cfg.scheme));
    if (variant != nullptr) j.Key("variant").Value(variant);
    j.Key("workload").Value(ScaleLabel(cfg.workload));
    j.Key("insert_ratio").Value(cfg.workload.insert_ratio);
    j.Key("clients").Value(static_cast<uint64_t>(cfg.num_clients));
    j.Key("dataset").Value(static_cast<uint64_t>(env.dataset));
    j.Key("requests_per_client").Value(env.requests);
  }

  void WriteCell(const model::RunResult& r, const model::ClusterConfig& cfg,
                 const BenchEnv& env, const char* variant) {
    const auto snap = telemetry::Registry::Global().TakeSnapshot();
    telemetry::JsonWriter j;
    j.BeginObject();
    WriteCellCoords(j, cfg, env, variant);
    j.Key("completed").Value(r.completed);
    j.Key("duration_us").Value(r.duration_us);
    j.Key("throughput_kops").Value(r.throughput_kops);
    j.Key("server_cpu_util").Value(r.server_cpu_util);
    j.Key("server_tx_gbps").Value(r.server_tx_gbps);
    j.Key("server_rx_gbps").Value(r.server_rx_gbps);
    j.Key("latency_us");
    telemetry::WriteHistogram(j, r.latency_us);
    j.Key("fast_latency_us");
    telemetry::WriteHistogram(j, r.fast_latency_us);
    j.Key("offload_latency_us");
    telemetry::WriteHistogram(j, r.offload_latency_us);
    j.Key("insert_latency_us");
    telemetry::WriteHistogram(j, r.insert_latency_us);
    j.Key("rdma");
    j.BeginObject();
    j.Key("reads").Value(r.rdma_reads);
    j.Key("doorbells").Value(r.doorbells);
    j.Key("polls").Value(r.polls);
    j.Key("version_retries").Value(r.version_retries);
    j.EndObject();
    j.Key("adaptive");
    j.BeginObject();
    j.Key("mode_switches").Value(r.mode_switches);
    j.Key("escalations").Value(r.adaptive_escalations);
    j.Key("fast_searches").Value(r.fast_searches);
    j.Key("offloaded_searches").Value(r.offloaded_searches);
    j.EndObject();
    j.Key("metrics").Raw(telemetry::SnapshotToJson(snap));
    j.EndObject();
    out_->WriteLine(j.str());
  }

  /// One JSONL line per closed window: cell coordinates, the derived
  /// offload-share / utilization pair, op rates, and the raw window.
  void WriteTimeline(const telemetry::MetricsSampler& sampler,
                     const model::ClusterConfig& cfg, const BenchEnv& env,
                     const char* variant) {
    for (const telemetry::MetricWindow& w : sampler.Windows()) {
      telemetry::JsonWriter j;
      j.BeginObject();
      WriteCellCoords(j, cfg, env, variant);
      j.Key("seq").Value(w.seq);
      j.Key("start_us").Value(w.start_us);
      j.Key("end_us").Value(w.end_us);
      const uint64_t fast = w.counter("catfish.client.search.fast");
      const uint64_t offload = w.counter("catfish.client.search.offload");
      const uint64_t ops =
          fast + offload + w.counter("catfish.client.insert");
      j.Key("offload_share")
          .Value(fast + offload > 0
                     ? static_cast<double>(offload) /
                           static_cast<double>(fast + offload)
                     : 0.0);
      j.Key("utilization").Value(w.gauge("catfish.server.utilization"));
      j.Key("ops").Value(ops);
      j.Key("kops")
          .Value(w.seconds() > 0.0
                     ? static_cast<double>(ops) / w.seconds() / 1e3
                     : 0.0);
      j.Key("escalations").Value(w.counter("adaptive.escalations"));
      j.Key("mode_switches").Value(w.counter("adaptive.mode_switches"));
      j.Key("window").Raw(telemetry::WindowToJson(w));
      j.EndObject();
      timeline_out_->WriteLine(j.str());
    }
  }

  const char* figure_;
  std::string trace_path_;
  std::unique_ptr<telemetry::JsonLinesWriter> out_;
  std::unique_ptr<telemetry::JsonLinesWriter> timeline_out_;
  std::vector<std::shared_ptr<telemetry::Trace>> traces_;
};

/// Live scrape endpoint for a running bench: when the env sets a stats
/// port, owns a wall-clock MetricsSampler (500 ms windows) plus a
/// StatsServer exposing /metrics, /snapshot, /timeline and /events on
/// 127.0.0.1. Note the cell exporter resets the global registry between
/// cells, so live counter windows saturate to zero at cell boundaries.
struct StatsEndpoint {
  std::unique_ptr<telemetry::MetricsSampler> sampler;
  std::unique_ptr<tcpkit::StatsServer> server;
};

inline StatsEndpoint MaybeServeStats(const BenchEnv& env) {
  StatsEndpoint ep;
  if (env.stats_port < 0) return ep;
  telemetry::SamplerConfig scfg;
  scfg.window_us = 500'000;
  scfg.retain = 1024;
  ep.sampler = std::make_unique<telemetry::MetricsSampler>(
      &telemetry::Registry::Global(), scfg);
  ep.sampler->Start();
  tcpkit::StatsServerConfig sscfg;
  sscfg.port = static_cast<uint16_t>(env.stats_port);
  sscfg.sampler = ep.sampler.get();
  ep.server = std::make_unique<tcpkit::StatsServer>(sscfg);
  if (ep.server->ok()) {
    std::fprintf(stderr, "stats server on http://127.0.0.1:%u\n",
                 ep.server->port());
  } else {
    std::fprintf(stderr, "warning: cannot bind stats port %d\n",
                 env.stats_port);
  }
  return ep;
}

inline constexpr model::Scheme kAllSchemes[] = {
    model::Scheme::kTcp1G, model::Scheme::kTcp40G,
    model::Scheme::kFastMessaging, model::Scheme::kRdmaOffloading,
    model::Scheme::kCatfish};

inline void PrintEnv(const char* figure, const BenchEnv& env) {
  std::printf("=== %s ===\n", figure);
  std::printf(
      "dataset=%zu rects, %llu requests/client, seed=%llu "
      "(set CATFISH_DATASET / CATFISH_REQUESTS / CATFISH_QUICK to change)\n\n",
      env.dataset, static_cast<unsigned long long>(env.requests),
      static_cast<unsigned long long>(env.seed));
}

}  // namespace catfish::bench

// Recovery bench: how long does the durable write path take to come
// back, as a function of WAL length?
//
// Pure durability measurement — no sockets, no client: each point
// builds a log of N records (optionally with a checkpoint capturing 90%
// of them), then repeatedly recovers a fresh DurabilityManager + arena
// from the surviving "disk" and times Recover() end to end. That is
// exactly the window during which a restarted server refuses traffic.
//
//   CATFISH_TRIALS           recoveries per point        (default 3)
//   CATFISH_QUICK=1          smaller sweep for CI smoke runs
//   CATFISH_RECOVERY_JSONL   JSONL sink, "-" = stdout    (default off)
//
// JSONL schema (one line per trial):
//   {"bench":"recovery","mode":...,"wal_records":N,"wal_bytes":B,
//    "checkpoint_bytes":C,"trial":t,"recovery_ms":...,"replay_us":...,
//    "records_replayed":...,"replay_records_per_s":...}
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "durable/manager.h"
#include "durable/storage.h"
#include "durable/wal.h"
#include "rtree/node.h"
#include "rtree/rstar.h"
#include "telemetry/export.h"

namespace catfish {
namespace {

constexpr size_t kArenaChunks = 1 << 14;

geo::Rect RandomRect(Xoshiro256& rng, double max_edge) {
  const double x = rng.NextDouble() * (1.0 - max_edge);
  const double y = rng.NextDouble() * (1.0 - max_edge);
  return geo::Rect{x, y, x + rng.NextDouble() * max_edge,
                   y + rng.NextDouble() * max_edge};
}

struct DiskState {
  std::shared_ptr<durable::MemLogStorage> wal;
  std::shared_ptr<durable::MemCheckpointStore> ckpt;
  size_t checkpoint_bytes = 0;
};

/// Produces the post-crash disk for one sweep point: N acked writes,
/// with `checkpointed` of them captured in a checkpoint (0 = log only).
DiskState BuildDisk(size_t records, size_t checkpointed, uint64_t seed) {
  DiskState disk;
  disk.wal = std::make_shared<durable::MemLogStorage>();
  disk.ckpt = std::make_shared<durable::MemCheckpointStore>();
  durable::DurabilityConfig cfg;
  cfg.checkpoint_wal_bytes = 0;  // checkpoints only where scripted below
  durable::DurabilityManager mgr(disk.wal, disk.ckpt, cfg);
  rtree::NodeArena arena(rtree::kChunkSize, kArenaChunks);
  rtree::RStarTree tree = mgr.Recover(arena);

  Xoshiro256 rng(seed);
  for (size_t i = 0; i < records; ++i) {
    mgr.ExecuteInsert(tree, /*client_gen=*/1, /*req_id=*/i + 1,
                      RandomRect(rng, 0.005), i);
    if (checkpointed != 0 && i + 1 == checkpointed) {
      mgr.Checkpoint(tree);
    }
  }
  if (const auto blob = disk.ckpt->Read()) {
    disk.checkpoint_bytes = blob->size();
  }
  return disk;
}

int Run() {
  size_t trials = 3;
  if (const char* t = std::getenv("CATFISH_TRIALS")) {
    trials = std::strtoull(t, nullptr, 10);
  }
  std::vector<size_t> points = {1'000, 5'000, 10'000, 20'000, 50'000};
  if (const char* q = std::getenv("CATFISH_QUICK"); q && q[0] == '1') {
    points = {500, 2'000, 5'000};
  }
  std::unique_ptr<telemetry::JsonLinesWriter> jsonl;
  if (const char* j = std::getenv("CATFISH_RECOVERY_JSONL")) {
    jsonl = std::make_unique<telemetry::JsonLinesWriter>(j);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "warning: cannot open '%s' for JSONL\n", j);
      jsonl.reset();
    }
  }

  std::printf("=== recovery latency vs WAL length ===\n");
  std::printf("%zu trials per point (set CATFISH_TRIALS to change)\n\n",
              trials);
  std::printf("%-16s %12s %12s %12s %14s %16s\n", "mode", "wal_records",
              "wal_KiB", "ckpt_KiB", "recovery_ms", "replay_rec/s");

  for (const size_t records : points) {
    struct Mode {
      const char* name;
      size_t checkpointed;
    };
    // log_only replays everything; checkpoint_tail restores the image
    // and replays the last 10% — the steady-state shape when the server
    // checkpoints on WAL growth.
    const Mode modes[] = {{"log_only", 0},
                          {"checkpoint_tail", records - records / 10}};
    for (const Mode& mode : modes) {
      const DiskState disk =
          BuildDisk(records, mode.checkpointed, /*seed=*/records);
      double sum_ms = 0;
      double sum_rate = 0;
      for (size_t trial = 0; trial < trials; ++trial) {
        durable::DurabilityManager mgr(disk.wal, disk.ckpt);
        rtree::NodeArena arena(rtree::kChunkSize, kArenaChunks);
        const auto t0 = std::chrono::steady_clock::now();
        rtree::RStarTree tree = mgr.Recover(arena);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        (void)tree;
        const auto& report = mgr.recovery_report();
        const double rate =
            report.replay_us == 0
                ? 0.0
                : 1e6 * static_cast<double>(report.records_replayed) /
                      static_cast<double>(report.replay_us);
        sum_ms += ms;
        sum_rate += rate;
        if (jsonl) {
          char line[512];
          std::snprintf(
              line, sizeof line,
              "{\"bench\":\"recovery\",\"mode\":\"%s\","
              "\"wal_records\":%zu,\"wal_bytes\":%zu,"
              "\"checkpoint_bytes\":%zu,\"trial\":%zu,"
              "\"recovery_ms\":%.3f,\"replay_us\":%llu,"
              "\"records_replayed\":%llu,\"replay_records_per_s\":%.0f}",
              mode.name, records, disk.wal->size(), disk.checkpoint_bytes,
              trial, ms, static_cast<unsigned long long>(report.replay_us),
              static_cast<unsigned long long>(report.records_replayed),
              rate);
          jsonl->WriteLine(line);
        }
      }
      std::printf("%-16s %12zu %12.1f %12.1f %14.2f %16.0f\n", mode.name,
                  records, disk.wal->size() / 1024.0,
                  disk.checkpoint_bytes / 1024.0,
                  sum_ms / static_cast<double>(trials),
                  sum_rate / static_cast<double>(trials));
    }
  }
  std::printf("\nWAL frame is %zu bytes; replay applies records through "
              "the same R*-tree write path the server uses.\n",
              durable::kWalFrameBytes);
  return 0;
}

}  // namespace
}  // namespace catfish

int main() { return catfish::Run(); }

// Figure 12: throughput of hybrid workloads — 90% search + 10% insert
// (§V-B). Inserts use the paper's skewed corner-biased placement and
// always travel through the server (writer-lock serialized). Shape
// targets: Catfish highest except at 256 clients for scale 0.01 /
// power-law, where inserts dominate the server CPU and the adaptive
// scheme (which only optimizes searches) cannot help; offloading
// degrades slightly with client count as read-write conflicts grow.
// Paper headline: Catfish up to 3.3× / 13.67× / 14.22× over fast
// messaging / offloading / TCP.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 12: 90/10 search+insert throughput (Kops)", env);
  CellExporter exporter("fig12_hybrid_throughput", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);

  workload::RequestGen::Config scales[3];
  scales[0].scale = 1e-5;
  scales[1].scale = 1e-2;
  scales[2].dist = workload::RequestGen::ScaleDist::kPowerLaw;
  for (auto& w : scales) w.insert_ratio = 0.1;

  const size_t client_counts[] = {32, 64, 128, 256};

  for (const auto& w : scales) {
    std::printf("--- workload: scale %s, 10%% inserts ---\n", ScaleLabel(w));
    std::printf("%18s", "clients:");
    for (const size_t c : client_counts) std::printf(" %10zu", c);
    std::printf("\n");
    for (const auto s : kAllSchemes) {
      std::printf("%-18s", model::SchemeName(s));
      for (const size_t c : client_counts) {
        const auto r = exporter.Run(tb, s, c, w, env);
        std::printf(" %10.1f", r.throughput_kops);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: Catfish wins except 256-client 0.01/power-law where\n"
      "inserts dominate the (serialized) server write path.\n");
  return 0;
}

// Ablation: the design knobs of the adaptive scheme (DESIGN.md §3).
//
// The paper fixes N = 8, T = 95%, Inv = 10 ms and predUtil = most-recent
// (§IV-A, §V-B) without sensitivity analysis; this bench sweeps each
// knob in the CPU-bound regime (scale 1e-5, 128 clients) where the
// adaptive scheme actually works, reporting throughput, latency and the
// offloaded share. Expected reading:
//  * N too small → windows too short to relieve the server; N too large
//    → overshoot past the utilization target;
//  * T low → clients offload under moderate load (wasting the faster
//    fast-messaging path); T ≈ 1 → adaptation only at full saturation;
//  * Inv long → stale signal, slow reaction;
//  * EWMA prediction (§VI extension) smooths the signal: similar steady
//    state, fewer spurious switches.
#include "bench_util.h"

namespace {

using namespace catfish;
using namespace catfish::bench;

void Report(const char* label, const model::RunResult& r) {
  const double total =
      static_cast<double>(r.fast_searches + r.offloaded_searches);
  std::printf("%-28s %10.1f %12.1f %11.1f%% %10.2f\n", label,
              r.throughput_kops, r.latency_us.mean(),
              total > 0 ? 100.0 * static_cast<double>(r.offloaded_searches) /
                              total
                        : 0.0,
              r.server_cpu_util);
}

void Header() {
  std::printf("%-28s %10s %12s %12s %10s\n", "config", "thr_kops",
              "mean_lat_us", "offload%", "cpu_util");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Ablation: adaptive-scheme knobs (scale 1e-5, 128 clients)", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("ablation_adaptive", env);
  const StatsEndpoint stats = MaybeServeStats(env);
  workload::RequestGen::Config w;
  w.scale = 1e-5;

  const auto run = [&](const char* label, auto&& mutate) {
    auto cfg = MakeConfig(model::Scheme::kCatfish, 128, w, env);
    mutate(cfg);
    return exporter.RunConfig(tb, cfg, env, label);
  };

  std::printf("--- back-off window N (paper: 8) ---\n");
  Header();
  for (const uint32_t n : {2u, 8u, 32u, 128u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "N = %u", n);
    Report(label, run(label, [n](model::ClusterConfig& c) {
             c.adaptive.window = n;
           }));
  }

  std::printf(
      "\n--- busy threshold T (paper: 0.95; at moderate load, 64 clients, "
      "where T differentiates) ---\n");
  Header();
  for (const double t : {0.5, 0.8, 0.95, 0.99}) {
    char label[64];
    std::snprintf(label, sizeof(label), "T = %.2f", t);
    auto cfg = MakeConfig(model::Scheme::kCatfish, 64, w, env);
    cfg.adaptive.busy_threshold = t;
    Report(label, exporter.RunConfig(tb, cfg, env, label));
  }

  std::printf("\n--- heartbeat interval Inv (paper: 10 ms) ---\n");
  Header();
  for (const uint64_t inv : {1'000ull, 10'000ull, 50'000ull}) {
    char label[64];
    std::snprintf(label, sizeof(label), "Inv = %llu us",
                  static_cast<unsigned long long>(inv));
    Report(label, run(label, [inv](model::ClusterConfig& c) {
             c.adaptive.heartbeat_interval_us = inv;
           }));
  }

  std::printf("\n--- predUtil predictor (paper: most-recent; EWMA = §VI) ---\n");
  Header();
  Report("most-recent", run("most-recent", [](model::ClusterConfig& c) {
           c.adaptive.predictor = UtilPredictor::kMostRecent;
         }));
  Report("EWMA alpha=0.4", run("EWMA alpha=0.4", [](model::ClusterConfig& c) {
           c.adaptive.predictor = UtilPredictor::kEwma;
         }));

  std::printf("\n--- enhancement ablation (event-driven / multi-issue) ---\n");
  Header();
  Report("catfish (both on)", run("both on", [](model::ClusterConfig&) {}));
  Report("no multi-issue", run("no multi-issue", [](model::ClusterConfig& c) {
           c.multi_issue = false;
         }));
  Report("polling server", run("polling server", [](model::ClusterConfig& c) {
           c.notify = NotifyMode::kPolling;
         }));
  return 0;
}

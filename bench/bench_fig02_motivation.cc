// Figure 2: the motivating experiment (§I).
//
// A TCP/IP R-tree server on 1 GbE, 2 M-rectangle tree, clients sweeping
// 2..32, at two request scales:
//   (a) scale 0.01    — responses are large: the server NIC saturates
//                       while CPU stays low (network-bound);
//   (b) scale 0.00001 — responses are tiny: server CPU becomes the
//                       bottleneck while bandwidth is far from line rate
//                       (CPU-bound).
// Shape target: in (a) bandwidth ≈ 1 Gbps with low CPU; in (b) CPU ≫
// bandwidth fraction.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 2: server CPU vs bandwidth on TCP/IP-1G", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("fig02_motivation", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  for (const double scale : {1e-2, 1e-5}) {
    std::printf("--- request scale %s (Fig 2%s) ---\n",
                scale == 1e-2 ? "0.01" : "0.00001",
                scale == 1e-2 ? "a" : "b");
    std::printf("%8s %12s %16s %14s %12s\n", "clients", "cpu_util",
                "bandwidth_gbps", "bw_fraction", "thr_kops");
    for (const size_t clients : {2, 4, 8, 16, 32}) {
      workload::RequestGen::Config w;
      w.dist = workload::RequestGen::ScaleDist::kFixed;
      w.scale = scale;
      const auto r = exporter.Run(tb, model::Scheme::kTcp1G, clients, w, env);
      const double bw = r.server_tx_gbps + r.server_rx_gbps;
      std::printf("%8zu %12.3f %16.3f %14.3f %12.1f\n", clients,
                  r.server_cpu_util, bw, bw / 1.0, r.throughput_kops);
    }
    std::printf("\n");
  }

  // §I's second claim: "changing the network to 40 Gbps Ethernet does
  // not help in the CPU-bound case" — once the server CPU saturates
  // (high client counts in our calibration), the fatter pipe buys
  // nothing.
  std::printf(
      "--- CPU-bound case on faster hardware (scale 0.00001, 256 clients) "
      "---\n");
  std::printf("%12s %12s %12s\n", "network", "thr_kops", "cpu_util");
  for (const auto scheme : {model::Scheme::kTcp1G, model::Scheme::kTcp40G}) {
    workload::RequestGen::Config w;
    w.scale = 1e-5;
    const auto r = exporter.Run(tb, scheme, 256, w, env);
    std::printf("%12s %12.1f %12.3f\n", model::SchemeName(scheme),
                r.throughput_kops, r.server_cpu_util);
  }

  std::printf(
      "\nPaper shape: (a) bandwidth saturates ~1 Gbps while CPU <= ~30%%;\n"
      "             (b) CPU dominates while bandwidth stays well below\n"
      "             line rate — and upgrading to 40 GbE barely moves the\n"
      "             CPU-bound numbers.\n");
  return 0;
}

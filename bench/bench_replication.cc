// Replication: follower read scaling and failover-to-first-ack.
//
// Part A (DES): sweeps the sharded deployment over 0/1/2 followers per
// shard under the offloading scheme, for a read-only and a 10%-insert
// workload. Followers are extra replica machines (own NIC + links)
// serving one-sided offloaded reads, so read throughput should grow
// with the replica count while the semi-sync gate charges every write
// the shipping + quorum-ack round (reported as repl_ack_us).
//
// Part B (live stack): kills the primary of a replicated shard and
// measures the wall-clock path back to the first acked write,
// decomposed the way PR 5's bench_chaos_recovery decomposes a restart:
//
//   detection    kill -> client watchdog reaches Disconnected
//   promotion    Promote(): epoch bump + follower rewire + republish
//   rebootstrap  promote done -> first Insert acked by the new primary
//
// The contrast with bench_chaos_recovery is the point: a restart pays
// detection + WAL replay + rebootstrap (replay grows with the log
// tail), while a failover pays detection + promotion + rebootstrap —
// no replay at all, because the promoted follower already applied the
// shipped log. With --telemetry-json every DES cell and every failover
// trial appends one JSON line.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/shard_sim.h"
#include "shard/client.h"
#include "shard/host.h"

namespace {

using namespace catfish;

geo::Rect RandomRect(Xoshiro256& rng, double max_edge) {
  const double x = rng.NextDouble() * (1.0 - max_edge);
  const double y = rng.NextDouble() * (1.0 - max_edge);
  return geo::Rect{x, y, x + rng.NextDouble() * max_edge,
                   y + rng.NextDouble() * max_edge};
}

double Ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

void PrintPercentiles(const char* name, std::vector<double> v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end());
  std::printf("%-16s min=%8.2f p50=%8.2f max=%8.2f ms\n", name, v.front(),
              v[v.size() / 2], v.back());
}

// -------------------------------------------------------------------------
// Part A: read scaling vs replica count (DES)
// -------------------------------------------------------------------------

void ReadScaling(const bench::BenchEnv& env, telemetry::JsonLinesWriter* out) {
  constexpr uint32_t kShards = 2;
  const auto items = workload::UniformDataset(env.dataset, 1e-4, env.seed);

  workload::RequestGen::Config workloads[2];
  workloads[0].scale = 1e-5;  // read-only
  workloads[1].scale = 1e-5;
  workloads[1].insert_ratio = 0.1;  // writes pay the semi-sync gate

  for (const auto& w : workloads) {
    std::printf("--- workload: scale %s, insert_ratio %.2f, %u shards, "
                "256 clients (offloading) ---\n",
                bench::ScaleLabel(w), w.insert_ratio, kShards);
    std::printf("%9s %10s %9s %9s %11s %11s %11s\n", "replicas", "kops",
                "p50_us", "p99_us", "fol_reads", "ack_p50", "ack_p99");
    double base_kops = 0.0;
    for (const uint32_t replicas : {0u, 1u, 2u}) {
      telemetry::Registry::Global().Reset();
      model::ShardedClusterConfig cfg;
      // Offloading pins every sub-query to the one-sided path — the
      // path followers can serve; fast messaging would need the
      // primary's worker pool regardless of the replica count.
      cfg.scheme = model::Scheme::kRdmaOffloading;
      cfg.num_shards = kShards;
      cfg.num_clients = 256;
      cfg.requests_per_client = env.requests;
      cfg.workload = w;
      cfg.seed = env.seed;
      cfg.arena_chunks = bench::ArenaChunksFor(env.dataset / kShards + 1);
      cfg.num_replicas = replicas;
      cfg.ack_followers = 1;
      cfg.follower_read_fraction = 1.0;
      model::ShardedClusterSim sim(items, cfg);
      const auto r = sim.Run();
      if (base_kops == 0.0) base_kops = r.throughput_kops;
      std::printf("%9u %10.1f %9.1f %9.1f %11llu %11.1f %11.1f  (%4.2fx)\n",
                  replicas, r.throughput_kops, r.search_latency_us.p50(),
                  r.search_latency_us.p99(),
                  static_cast<unsigned long long>(r.follower_reads),
                  r.repl_ack_us.p50(), r.repl_ack_us.p99(),
                  base_kops > 0.0 ? r.throughput_kops / base_kops : 0.0);
      if (out != nullptr) {
        telemetry::JsonWriter j;
        j.BeginObject();
        j.Key("figure").Value("replication_read_scaling");
        j.Key("scheme").Value(model::SchemeName(cfg.scheme));
        j.Key("workload").Value(bench::ScaleLabel(w));
        j.Key("insert_ratio").Value(w.insert_ratio);
        j.Key("shards").Value(static_cast<uint64_t>(kShards));
        j.Key("replicas").Value(static_cast<uint64_t>(replicas));
        j.Key("clients").Value(static_cast<uint64_t>(cfg.num_clients));
        j.Key("dataset").Value(static_cast<uint64_t>(env.dataset));
        j.Key("requests_per_client").Value(env.requests);
        j.Key("completed").Value(r.completed);
        j.Key("duration_us").Value(r.duration_us);
        j.Key("throughput_kops").Value(r.throughput_kops);
        j.Key("follower_reads").Value(r.follower_reads);
        j.Key("offload_subqueries").Value(r.offload_subqueries);
        j.Key("replicated_writes").Value(r.replicated_writes);
        j.Key("inserts").Value(r.inserts);
        j.Key("search_latency_us");
        telemetry::WriteHistogram(j, r.search_latency_us);
        j.Key("insert_latency_us");
        telemetry::WriteHistogram(j, r.insert_latency_us);
        j.Key("repl_ack_us");
        telemetry::WriteHistogram(j, r.repl_ack_us);
        j.EndObject();
        out->WriteLine(j.str());
      }
    }
    std::printf("\n");
  }
}

// -------------------------------------------------------------------------
// Part B: failover-to-first-ack decomposition (live stack)
// -------------------------------------------------------------------------

void Failover(telemetry::JsonLinesWriter* out) {
  size_t trials = 10;
  if (const char* t = std::getenv("CATFISH_TRIALS")) {
    trials = std::strtoull(t, nullptr, 10);
  } else if (const char* q = std::getenv("CATFISH_QUICK"); q && q[0] == '1') {
    trials = 3;
  }
  size_t writes_per_trial = 200;
  if (const char* w = std::getenv("CATFISH_WRITES")) {
    writes_per_trial = std::strtoull(w, nullptr, 10);
  }
  constexpr uint32_t kReplicas = 2;

  std::printf("=== failover: KillPrimary -> first acked write "
              "(promoted follower, no WAL replay) ===\n");
  std::printf("%zu trials, %zu writes before each kill, %u followers "
              "(CATFISH_TRIALS / CATFISH_WRITES)\n\n",
              trials, writes_per_trial, kReplicas);

  std::vector<double> total_ms, detection_ms, promotion_ms, rebootstrap_ms;
  Xoshiro256 rng(7);
  for (size_t trial = 0; trial < trials; ++trial) {
    // Fresh deployment per trial: promotion consumes a follower, so a
    // reused host would fail over onto a shrinking replica set.
    rdma::Fabric fabric(rdma::FabricProfile::Instant());
    shard::ShardHostConfig hcfg;
    hcfg.num_shards = 1;
    hcfg.server.heartbeat_interval_us = 1'000;
    hcfg.durable = true;
    hcfg.num_replicas = kReplicas;
    shard::ShardHost host(fabric, hcfg);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 2'000; ++i) {
      items.push_back({RandomRect(rng, 0.005), i});
    }
    host.Load(items);

    shard::ShardedClientConfig ccfg;
    ccfg.client.adaptive.heartbeat_interval_us = 1'000;
    ccfg.client.watchdog.enabled = true;
    ccfg.client.watchdog.suspect_after = 5;
    ccfg.client.watchdog.disconnect_after = 15;
    ccfg.client.request_timeout_us = 200'000;
    ccfg.client.remote_retry.max_attempts = 8;
    ccfg.client.remote_retry.backoff_base_us = 1;
    ccfg.client.remote_retry.backoff_cap_us = 50;
    ccfg.client.write_attempts = 50;
    shard::ShardedRTreeClient client(
        fabric.CreateNode("client"),
        [&](uint32_t s) { return host.Dial(s); }, ccfg);

    // Write burst: the followers must have a shipped log tail to apply,
    // or promotion would be measured against an idle shard.
    uint64_t next_id = 1'000'000 + trial * writes_per_trial;
    for (size_t i = 0; i < writes_per_trial; ++i) {
      (void)client.Insert(RandomRect(rng, 0.005), next_id++);
    }

    const auto t0 = std::chrono::steady_clock::now();
    host.KillPrimary(0);

    // Detection: heartbeats went silent; the client watchdog walks
    // Connected -> Suspect -> Disconnected (disconnect_after missed
    // intervals). The watchdog is passive — it ticks inside client
    // operations — so drive it the way a live deployment would: keep
    // probing. The in-flight probe trips it mid-wait. This is the same
    // detector bench_chaos_recovery waits on — only there the server
    // comes back by itself.
    while (client.shard_client(0).conn_state() !=
           ConnState::kDisconnected) {
      try {
        (void)client.Search(RandomRect(rng, 0.001));
      } catch (const std::exception&) {
      }
    }
    const auto t_detect = std::chrono::steady_clock::now();

    // Promotion: most-caught-up follower wins, epoch fences the dead
    // primary's zombie acks, remaining followers rewire, map
    // republishes under a bumped version + epoch.
    const uint32_t promoted = host.Promote(0);
    const auto t_promote = std::chrono::steady_clock::now();
    if (promoted == UINT32_MAX) {
      std::fprintf(stderr, "trial %zu: no live follower to promote\n", trial);
      host.Stop();
      continue;
    }

    // Re-bootstrap: the Disconnected client re-dials (host Dial now
    // resolves to the promoted follower's acceptor) and retries the
    // write with its original req_id until the new primary acks it.
    for (;;) {
      try {
        if (client.Insert(RandomRect(rng, 0.005), next_id)) break;
      } catch (const shard::ShardError&) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ++next_id;
    const auto t_ok = std::chrono::steady_clock::now();

    total_ms.push_back(Ms(t_ok - t0));
    detection_ms.push_back(Ms(t_detect - t0));
    promotion_ms.push_back(Ms(t_promote - t_detect));
    rebootstrap_ms.push_back(Ms(t_ok - t_promote));
    std::printf("trial %2zu: total=%7.2f detect=%7.2f promote=%7.2f "
                "rebootstrap=%7.2f ms (promoted r%u)\n",
                trial, total_ms.back(), detection_ms.back(),
                promotion_ms.back(), rebootstrap_ms.back(), promoted);
    if (out != nullptr) {
      telemetry::JsonWriter j;
      j.BeginObject();
      j.Key("figure").Value("failover_first_ack");
      j.Key("trial").Value(static_cast<uint64_t>(trial));
      j.Key("replicas").Value(static_cast<uint64_t>(kReplicas));
      j.Key("writes_before_kill")
          .Value(static_cast<uint64_t>(writes_per_trial));
      j.Key("promoted_replica").Value(static_cast<uint64_t>(promoted));
      j.Key("total_ms").Value(total_ms.back());
      j.Key("detection_ms").Value(detection_ms.back());
      j.Key("promotion_ms").Value(promotion_ms.back());
      j.Key("rebootstrap_ms").Value(rebootstrap_ms.back());
      j.EndObject();
      out->WriteLine(j.str());
    }
    host.Stop();
  }

  std::printf("\n");
  PrintPercentiles("total", total_ms);
  PrintPercentiles("detection", detection_ms);
  PrintPercentiles("promotion", promotion_ms);
  PrintPercentiles("rebootstrap", rebootstrap_ms);
  std::printf(
      "\nShape: detection dominates (watchdog disconnect_after x heartbeat\n"
      "interval); promotion itself is sub-millisecond and, unlike the\n"
      "restart path bench_chaos_recovery measures, there is no WAL replay\n"
      "term at all — the promoted follower already applied the shipped\n"
      "log. Compare against bench_chaos_recovery with the same\n"
      "CATFISH_WRITES to see the replay term failover deletes.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Replication: follower read scaling and failover-to-first-ack",
           env);

  std::unique_ptr<catfish::telemetry::JsonLinesWriter> out;
  if (!env.telemetry_json.empty()) {
    out = std::make_unique<catfish::telemetry::JsonLinesWriter>(
        env.telemetry_json);
    if (!out->ok()) {
      std::fprintf(stderr, "warning: cannot open '%s' for telemetry JSON\n",
                   env.telemetry_json.c_str());
      out.reset();
    }
  }

  ReadScaling(env, out.get());
  Failover(out.get());
  return 0;
}

// Figure 8: RDMA offloading with multi-issue (§IV-C).
//
// One client offloading searches at four scales (1e-5 .. 1e-2),
// single-issue (one READ per RTT) vs multi-issue (a whole frontier per
// round). Shape targets: multi-issue is never slower, and the largest
// relative gain appears at the widest scale (the paper reports a 15.13%
// latency reduction at 0.01) because wide searches have wide frontiers
// to pipeline.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 8: multi-issue offloading, 1 client", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("fig08_multi_issue", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  std::printf("%10s %18s %18s %12s\n", "scale", "single_lat_us",
              "multi_lat_us", "reduction");
  for (const double scale : {1e-5, 1e-4, 1e-3, 1e-2}) {
    workload::RequestGen::Config w;
    w.scale = scale;

    auto single = MakeConfig(model::Scheme::kRdmaOffloading, 1, w, env);
    single.multi_issue = false;
    const auto rs = exporter.RunConfig(tb, single, env, "single-issue");

    auto multi = MakeConfig(model::Scheme::kRdmaOffloading, 1, w, env);
    multi.multi_issue = true;
    const auto rm = exporter.RunConfig(tb, multi, env, "multi-issue");

    std::printf("%10g %18.2f %18.2f %11.2f%%\n", scale,
                rs.latency_us.mean(), rm.latency_us.mean(),
                100.0 * (1.0 - rm.latency_us.mean() / rs.latency_us.mean()));
  }
  std::printf(
      "\nPaper shape: multi-issue always <= single-issue; biggest gain at\n"
      "scale 0.01 (paper: 15.13%% reduction).\n");
  return 0;
}

// Figure 8: RDMA offloading with multi-issue (§IV-C).
//
// One client offloading searches at four scales (1e-5 .. 1e-2),
// single-issue (one READ per RTT) vs multi-issue (a whole frontier per
// round), plus a multi-issue variant with doorbell batching disabled to
// isolate the issue-path cost. Shape targets: multi-issue is never
// slower, and the largest relative gain appears at the widest scale
// (the paper reports a 15.13% latency reduction at 0.01) because wide
// searches have wide frontiers to pipeline. The doorbell ablation must
// show doorbells/op and polls/op dropping under batching while reads/op
// stays constant — batching changes how READs are issued, never how
// many.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace catfish;
  using namespace catfish::bench;
  const BenchEnv env = BenchEnv::Load(argc, argv);
  PrintEnv("Figure 8: multi-issue offloading, 1 client", env);

  Testbed tb = MakeUniformTestbed(env.dataset, env.seed);
  CellExporter exporter("fig08_multi_issue", env);
  const StatsEndpoint stats = MaybeServeStats(env);

  const auto per_op = [](uint64_t v, uint64_t ops) {
    return ops > 0 ? static_cast<double>(v) / static_cast<double>(ops) : 0.0;
  };

  std::printf("%10s %14s %14s %12s %8s %8s %8s %8s %9s\n", "scale",
              "single_lat_us", "multi_lat_us", "reduction", "db/op-u",
              "db/op-b", "poll/op-u", "poll/op-b", "reads/op");
  for (const double scale : {1e-5, 1e-4, 1e-3, 1e-2}) {
    workload::RequestGen::Config w;
    w.scale = scale;

    auto single = MakeConfig(model::Scheme::kRdmaOffloading, 1, w, env);
    single.multi_issue = false;
    const auto rs = exporter.RunConfig(tb, single, env, "single-issue");

    // Multi-issue with per-WR doorbells: the issue pattern Catfish's
    // engine had before Stage/Flush batching.
    auto unbatched = MakeConfig(model::Scheme::kRdmaOffloading, 1, w, env);
    unbatched.multi_issue = true;
    unbatched.doorbell_batching = false;
    const auto ru =
        exporter.RunConfig(tb, unbatched, env, "multi-issue-unbatched");

    auto multi = MakeConfig(model::Scheme::kRdmaOffloading, 1, w, env);
    multi.multi_issue = true;
    multi.doorbell_batching = true;  // Catfish issue path
    const auto rm = exporter.RunConfig(tb, multi, env, "multi-issue");

    std::printf("%10g %14.2f %14.2f %11.2f%% %8.2f %8.2f %8.2f %8.2f %9.2f\n",
                scale, rs.latency_us.mean(), rm.latency_us.mean(),
                100.0 * (1.0 - rm.latency_us.mean() / rs.latency_us.mean()),
                per_op(ru.doorbells, ru.completed),
                per_op(rm.doorbells, rm.completed),
                per_op(ru.polls, ru.completed),
                per_op(rm.polls, rm.completed),
                per_op(rm.rdma_reads, rm.completed));
    if (rm.rdma_reads != ru.rdma_reads) {
      std::printf("  WARNING: batched reads/op diverged from unbatched "
                  "(%llu vs %llu) — batching must not change READ count\n",
                  static_cast<unsigned long long>(rm.rdma_reads),
                  static_cast<unsigned long long>(ru.rdma_reads));
    }
  }
  std::printf(
      "\nPaper shape: multi-issue always <= single-issue; biggest gain at\n"
      "scale 0.01 (paper: 15.13%% reduction). Doorbell batching: db/op and\n"
      "poll/op drop batched vs unbatched at identical reads/op.\n");
  return 0;
}

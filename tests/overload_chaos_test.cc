// Overload & gray-failure chaos on the sharded deployment: an
// aggressor read burst against a deployment with one gray-degraded
// node (slow fault: every op touching it stalls but succeeds) while
// one shard's admission control sheds under forced saturation.
// Invariants under test:
//  * every acked write is present exactly once afterwards (shed
//    retries ride the same (client_gen, req_id) dedup as crash
//    retries), un-acked writes at most once;
//  * shed requests surface as *typed* errors (kOverloaded /
//    kBreakerOpen), never as hangs or silent empties;
//  * client breakers trip during the overload window and re-close
//    after the pressure clears;
//  * hedged fan-out reads around the degraded node via a follower
//    replica and still agrees with the brute-force oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "shard/client.h"
#include "shard/host.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;

class OverloadChaosTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;
  static constexpr uint64_t kItems = 1'500;

  void StartHost(uint32_t num_replicas, bool admission) {
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    shard::ShardHostConfig cfg;
    cfg.num_shards = kShards;
    cfg.server.heartbeat_interval_us = 1'000;
    cfg.durable = true;
    cfg.min_slop = 0.01;
    cfg.num_replicas = num_replicas;
    if (admission) {
      // Admission armed on every shard. max_queue_delay 0 makes the
      // queue-delay signal always agree, so utilization is the shed
      // switch per shard: OverrideUtilization(1.0) forces shedding,
      // and the high floor keeps organically-measured utilization from
      // tripping it on healthy shards.
      cfg.server.admission.enabled = true;
      cfg.server.admission.max_queue_delay_us = 0;
      cfg.server.admission.min_utilization = 0.95;
    }
    host_ = std::make_unique<shard::ShardHost>(*fabric_, cfg);

    Xoshiro256 rng(13);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < kItems; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      loaded_.push_back({r, i});
    }
    host_->Load(items);
  }

  void TearDown() override {
    if (host_) host_->Stop();
  }

  shard::ShardedClientConfig BaseConfig() {
    shard::ShardedClientConfig cfg;
    cfg.client.adaptive.heartbeat_interval_us = 1'000;
    cfg.client.request_timeout_us = 2'000'000;
    cfg.client.remote_retry.max_attempts = 8;
    cfg.client.remote_retry.backoff_base_us = 1;
    cfg.client.remote_retry.backoff_cap_us = 50;
    // Shed writes are resent with the original req_id until admission
    // lets them through — server dedup makes that exactly-once.
    cfg.client.write_attempts = 200;
    return cfg;
  }

  std::unique_ptr<shard::ShardedRTreeClient> Connect(
      const std::string& name, shard::ShardedClientConfig cfg) {
    auto node = fabric_->CreateNode(name);
    return std::make_unique<shard::ShardedRTreeClient>(
        node, [this](uint32_t s) { return host_->Dial(s); }, cfg);
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<shard::ShardHost> host_;
  std::vector<std::pair<geo::Rect, uint64_t>> loaded_;
};

TEST_F(OverloadChaosTest, AggressorBurstWithDegradedNodeKeepsWritesExactlyOnce) {
  StartHost(/*num_replicas=*/0, /*admission=*/true);

  // Gray failure on shard 1: every op touching its node stalls 300 us
  // and then succeeds — heartbeats included, so nothing disconnects.
  fabric_->faults().SetDegraded("shard-1", 300);
  // Hard overload on shard 2: admission sheds everything until relief.
  host_->server(2).OverrideUtilization(1.0);

  constexpr int kWriters = 3;
  constexpr uint64_t kWritesPerThread = 120;
  std::mutex mu;
  std::vector<std::pair<geo::Rect, uint64_t>> acked;
  std::vector<uint64_t> unacked;
  std::atomic<uint64_t> typed_sheds{0};
  std::atomic<uint64_t> breaker_fast_fails{0};
  std::atomic<bool> stop_aggressors{false};

  // Aggressor burst: full-region fan-out reads that keep hitting both
  // the degraded node and the shedding shard for the whole window.
  auto aggressor_cfg = BaseConfig();
  aggressor_cfg.client.mode = ClientMode::kFastOnly;
  aggressor_cfg.client.breaker.enabled = true;
  aggressor_cfg.client.breaker.failure_threshold = 2;
  aggressor_cfg.client.breaker.open_initial_us = 2'000;
  aggressor_cfg.client.breaker.open_max_us = 10'000;
  std::vector<std::unique_ptr<shard::ShardedRTreeClient>> aggressor_clients;
  for (int t = 0; t < 2; ++t) {
    aggressor_clients.push_back(
        Connect("aggressor-" + std::to_string(t), aggressor_cfg));
  }
  std::vector<std::thread> aggressors;
  for (int t = 0; t < 2; ++t) {
    aggressors.emplace_back([&, t] {
      auto* client = aggressor_clients[t].get();
      Xoshiro256 rng(500 + t);
      while (!stop_aggressors.load(std::memory_order_relaxed)) {
        try {
          (void)client->Search(RandomRect(rng, 0.4));
        } catch (const shard::ShardError& e) {
          // Sheds must be *typed* — anything else is a real failure.
          if (e.status() == ClientStatus::kOverloaded) {
            typed_sheds.fetch_add(1, std::memory_order_relaxed);
          } else if (e.status() == ClientStatus::kBreakerOpen) {
            breaker_fast_fails.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected status: "
                          << ToString(e.status());
          }
        }
      }
    });
  }

  std::vector<std::unique_ptr<shard::ShardedRTreeClient>> writer_clients;
  for (int t = 0; t < kWriters; ++t) {
    writer_clients.push_back(
        Connect("writer-" + std::to_string(t), BaseConfig()));
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      auto* client = writer_clients[t].get();
      Xoshiro256 rng(100 + t);
      for (uint64_t i = 0; i < kWritesPerThread; ++i) {
        const auto r = RandomRect(rng, 0.01);
        const uint64_t id = 10'000 + t * kWritesPerThread + i;
        try {
          ASSERT_TRUE(client->Insert(r, id));
          const std::scoped_lock lock(mu);
          acked.emplace_back(r, id);
        } catch (const shard::ShardError&) {
          // Ran out of retries inside the overload window: the write
          // may or may not have landed, but never twice.
          const std::scoped_lock lock(mu);
          unacked.push_back(id);
        }
      }
    });
  }

  // Overload window, then relief: shedding stops, faults lift.
  std::this_thread::sleep_for(60ms);
  host_->server(2).ClearUtilizationOverride();
  fabric_->faults().SetDegraded("shard-1", 0);
  for (auto& w : writers) w.join();
  stop_aggressors.store(true);
  for (auto& a : aggressors) a.join();

  // The window really shed (server-side and as typed client errors).
  EXPECT_GT(host_->server(2).stats().sheds, 0u);
  EXPECT_GT(typed_sheds.load(), 0u);

  // Breakers tripped during the window and re-closed after relief.
  uint64_t opens = 0;
  for (auto& c : aggressor_clients) {
    for (uint32_t s = 0; s < kShards; ++s) {
      opens += c->shard_client(s).stats().breaker_opens;
    }
  }
  EXPECT_GT(opens, 0u);
  // Recovery may lag by one breaker window plus one utilization-monitor
  // interval (the measured window is still hot right after the burst);
  // "re-closes" means a search eventually succeeds, not instantly.
  for (auto& c : aggressor_clients) {
    Xoshiro256 rng(9);
    EXPECT_TRUE(testutil::WaitUntil([&] {
      try {
        (void)c->Search(RandomRect(rng, 0.2));
        return true;
      } catch (const shard::ShardError&) {
        return false;
      }
    })) << "breaker never re-closed after relief";
  }

  // Exactly-once: acked writes present once, un-acked at most once.
  auto checker = Connect("checker", BaseConfig());
  const geo::Rect all{-1.0, -1.0, 2.0, 2.0};
  std::vector<uint64_t> ids;
  for (const auto& e : checker->Search(all)) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  auto count_of = [&ids](uint64_t id) {
    const auto [lo, hi] = std::equal_range(ids.begin(), ids.end(), id);
    return static_cast<size_t>(hi - lo);
  };
  for (const auto& [rect, id] : loaded_) {
    EXPECT_EQ(count_of(id), 1u) << "bulk-loaded id " << id;
  }
  const std::scoped_lock lock(mu);
  for (const auto& [rect, id] : acked) {
    EXPECT_EQ(count_of(id), 1u) << "acked insert " << id;
  }
  for (const uint64_t id : unacked) {
    EXPECT_LE(count_of(id), 1u) << "unacked insert " << id;
  }
  EXPECT_GT(acked.size(), kWritesPerThread);
}

TEST_F(OverloadChaosTest, HedgedFanoutMasksDegradedShardAndMatchesOracle) {
  // Admission stays off: this test is about masking a gray failure, and
  // a 5 ms service delay drives measured utilization high enough that
  // armed admission would (correctly) shed — a different defense than
  // the one under test.
  StartHost(/*num_replicas=*/1, /*admission=*/false);

  auto cfg = BaseConfig();
  cfg.client.mode = ClientMode::kFastOnly;
  // Hedges are follower reads: the hedge leg re-issues the sub-query
  // against a caught-up follower, so follower routing must be wired.
  cfg.read_from_followers = true;
  cfg.max_replica_lag = 64;
  cfg.replica_dial = [this](uint32_t s, uint32_t r) {
    return host_->DialReplica(s, r);
  };
  cfg.hedge.enabled = true;
  cfg.hedge.percentile = 0.9;
  cfg.hedge.min_delay_us = 300;
  cfg.hedge.max_delay_us = 3'000;
  cfg.hedge.min_samples = 4;
  auto client = Connect("hedger", cfg);

  testutil::BruteForceIndex oracle;
  for (const auto& [rect, id] : loaded_) oracle.Insert(rect, id);
  auto ids_of = [](std::vector<rtree::Entry> entries) {
    std::vector<uint64_t> ids;
    ids.reserve(entries.size());
    for (const auto& e : entries) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  // Warm the latency window on a healthy deployment so the adaptive
  // delay reflects normal sub-query latency, not the ceiling.
  Xoshiro256 rng(21);
  for (int i = 0; i < 8; ++i) {
    const auto q = RandomRect(rng, 0.3);
    EXPECT_EQ(ids_of(client->Search(q)), oracle.Search(q));
  }
  // Under sanitizers a healthy sub-query can outlast the delay ceiling
  // and hedge during warm-up; baseline the count instead of assuming 0.
  const uint64_t warmup_hedges = client->stats().hedges_issued;

  // Gray failure on shard 0's primary: it keeps answering every
  // request, just 5 ms late (a wedged-but-alive worker — the brownout
  // admission control cannot see). A degraded *link* would be wrong
  // here: the sim charges slow-fault sleeps to the posting thread, so
  // the client's own poll pump would stall and serialize the fan-out
  // instead of leaving a straggler to hedge around. The follower stays
  // fast, so the hedge leg wins.
  host_->server(0).SetServiceDelayForTest(5'000);
  for (int i = 0; i < 10; ++i) {
    // Full-region scans: every fan-out is guaranteed to touch the
    // degraded shard, so each query has a straggler to hedge around.
    const geo::Rect q{0.0, 0.0, 1.0, 1.0};
    EXPECT_EQ(ids_of(client->Search(q)), oracle.Search(q));
  }
  host_->server(0).SetServiceDelayForTest(0);

  const auto stats = client->stats();
  EXPECT_GT(stats.hedges_issued, warmup_hedges);
  EXPECT_GT(stats.hedges_won, 0u);
  // First-result-wins bookkeeping: every issued hedge resolves as won
  // or wasted, except the both-slow fallback (blocks on the primary).
  EXPECT_LE(stats.hedges_won + stats.hedges_wasted, stats.hedges_issued);
}

}  // namespace
}  // namespace catfish

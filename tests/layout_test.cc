#include "rtree/layout.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace catfish::rtree {
namespace {

std::vector<std::byte> MakeChunk(size_t size = 1024) {
  std::vector<std::byte> chunk(size);
  InitChunk(chunk);
  return chunk;
}

TEST(LayoutTest, Capacities) {
  EXPECT_EQ(PayloadCapacity(1024), 16u * 60u);
  EXPECT_EQ(PayloadCapacity(64), 60u);
  EXPECT_EQ(LineCount(1024), 16u);
}

TEST(LayoutTest, FreshChunkValidates) {
  auto chunk = MakeChunk();
  const auto v = ValidateVersions(chunk);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0u);
}

TEST(LayoutTest, ScatterGatherRoundTrip) {
  auto chunk = MakeChunk();
  std::vector<std::byte> payload(PayloadCapacity(1024));
  Xoshiro256 rng(3);
  for (auto& b : payload) b = static_cast<std::byte>(rng.Next());

  ScatterPayload(chunk, payload);
  std::vector<std::byte> out(payload.size());
  GatherPayload(chunk, out);
  EXPECT_EQ(payload, out);
  // Versions untouched by payload IO.
  EXPECT_TRUE(ValidateVersions(chunk).has_value());
}

TEST(LayoutTest, WriteProtocolVersions) {
  auto chunk = MakeChunk();
  BeginWrite(chunk);
  // Mid-write: odd versions, must not validate.
  EXPECT_FALSE(ValidateVersions(chunk).has_value());
  EXPECT_EQ(LineVersion(chunk, 0), 1u);
  EndWrite(chunk);
  const auto v = ValidateVersions(chunk);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2u);
}

TEST(LayoutTest, MixedVersionsDoNotValidate) {
  auto chunk = MakeChunk();
  // Simulate a torn image: one line from a newer version.
  BeginWrite(chunk);
  EndWrite(chunk);  // all lines at 2
  uint32_t v = 4;
  std::memcpy(chunk.data() + 5 * kLineSize, &v, sizeof(v));
  EXPECT_FALSE(ValidateVersions(chunk).has_value());
}

TEST(LayoutTest, GatherPayloadAtStraddlesLines) {
  auto chunk = MakeChunk();
  std::vector<std::byte> payload(PayloadCapacity(1024));
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i & 0xff);
  ScatterPayload(chunk, payload);

  // Read 100 bytes starting 10 bytes before a line boundary.
  const size_t offset = kLinePayload - 10;
  std::vector<std::byte> out(100);
  GatherPayloadAt(chunk, offset, out);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::byte>((offset + i) & 0xff));
  }
}

TEST(LayoutTest, PartialScatterLeavesTailIntact) {
  auto chunk = MakeChunk();
  std::vector<std::byte> full(PayloadCapacity(1024), std::byte{0xAA});
  ScatterPayload(chunk, full);
  std::vector<std::byte> head(90, std::byte{0xBB});
  ScatterPayload(chunk, head);

  std::vector<std::byte> out(PayloadCapacity(1024));
  GatherPayload(chunk, out);
  for (size_t i = 0; i < 90; ++i) EXPECT_EQ(out[i], std::byte{0xBB});
  for (size_t i = 90; i < out.size(); ++i) EXPECT_EQ(out[i], std::byte{0xAA});
}

// The seqlock property the offloading client depends on: a reader that
// validates versions around a gather never observes a torn payload.
TEST(LayoutTest, ConcurrentReaderNeverSeesTornPayload) {
  alignas(64) std::byte chunk_mem[1024];
  std::span<std::byte> chunk(chunk_mem, sizeof(chunk_mem));
  InitChunk(chunk);

  const size_t payload_size = PayloadCapacity(1024);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> valid_reads{0};

  std::thread writer([&] {
    std::vector<std::byte> payload(payload_size);
    uint8_t fill = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++fill;
      std::memset(payload.data(), fill, payload.size());
      BeginWrite(chunk);
      ScatterPayload(chunk, payload);
      EndWrite(chunk);
    }
  });

  std::vector<std::byte> out(payload_size);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto v1 = ValidateVersions(chunk);
    if (!v1) continue;
    GatherPayload(chunk, out);
    const auto v2 = ValidateVersions(chunk);
    if (!v2 || *v2 != *v1) continue;
    // Accepted read: every byte must carry the same fill value.
    for (size_t i = 1; i < out.size(); ++i) ASSERT_EQ(out[i], out[0]);
    valid_reads.fetch_add(1, std::memory_order_relaxed);
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(valid_reads.load(), 0u);
}

}  // namespace
}  // namespace catfish::rtree

#include "rtree/arena.h"

#include <gtest/gtest.h>

#include <new>
#include <set>
#include <stdexcept>

namespace catfish::rtree {
namespace {

TEST(ArenaTest, RejectsBadChunkSize) {
  EXPECT_THROW(NodeArena(100, 8), std::invalid_argument);
  EXPECT_THROW(NodeArena(0, 8), std::invalid_argument);
  EXPECT_THROW(NodeArena(1024, 1), std::invalid_argument);
}

TEST(ArenaTest, AllocationStartsAfterMetaChunk) {
  NodeArena arena(1024, 16);
  EXPECT_EQ(arena.Allocate(), 1u);
  EXPECT_EQ(arena.Allocate(), 2u);
  EXPECT_EQ(arena.allocated_chunks(), 2u);
}

TEST(ArenaTest, OffsetsAndSpans) {
  NodeArena arena(1024, 16);
  EXPECT_EQ(arena.OffsetOf(3), 3072u);
  EXPECT_EQ(arena.chunk(3).size(), 1024u);
  EXPECT_EQ(arena.memory().size(), 16u * 1024u);
  EXPECT_EQ(arena.chunk(3).data(), arena.memory().data() + 3072);
  // Chunks are cache-line aligned (needed for the versioned layout).
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.memory().data()) % 64, 0u);
}

TEST(ArenaTest, FreeListReuse) {
  NodeArena arena(1024, 16);
  const ChunkId a = arena.Allocate();
  const ChunkId b = arena.Allocate();
  (void)b;
  arena.Free(a);
  EXPECT_EQ(arena.Allocate(), a);
}

TEST(ArenaTest, ExhaustionThrows) {
  NodeArena arena(1024, 4);  // chunks 1..3 usable
  std::set<ChunkId> ids;
  for (int i = 0; i < 3; ++i) ids.insert(arena.Allocate());
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_THROW(arena.Allocate(), std::bad_alloc);
  arena.Free(*ids.begin());
  EXPECT_NO_THROW(arena.Allocate());
}

TEST(ArenaTest, AllocateZeroesChunk) {
  NodeArena arena(1024, 8);
  const ChunkId id = arena.Allocate();
  auto chunk = arena.chunk(id);
  // Dirty the chunk, free, re-allocate: must come back zeroed.
  chunk[100] = std::byte{0xee};
  arena.Free(id);
  const ChunkId again = arena.Allocate();
  ASSERT_EQ(again, id);
  EXPECT_EQ(arena.chunk(again)[100], std::byte{0});
}

TEST(ArenaTest, PayloadCapacityMatchesLayout) {
  NodeArena arena(1024, 8);
  EXPECT_EQ(arena.payload_capacity(), PayloadCapacity(1024));
}

}  // namespace
}  // namespace catfish::rtree

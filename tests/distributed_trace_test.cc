// End-to-end distributed tracing over the real 4-shard stack plus the
// DES simulators:
//  * a fan-out query with a known-injected straggler yields ONE
//    assembled distributed trace whose critical path names the slowest
//    sub-query's shard and stage;
//  * the assembled traces export as valid Chrome/Perfetto trace-event
//    JSON with critical-path marks;
//  * routed writes trace the same way (owner shard's tree grafted);
//  * context-free legacy clients interoperate unchanged;
//  * both simulators emit sampled distributed traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "json_util.h"
#include "model/cluster_sim.h"
#include "model/shard_sim.h"
#include "rtree/bulk_load.h"
#include "shard/client.h"
#include "shard/host.h"
#include "telemetry/assemble.h"
#include "telemetry/export.h"
#include "test_util.h"
#include "workload/generators.h"

namespace catfish {
namespace {

using testutil::BruteForceIndex;
using testutil::RandomRect;

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<rtree::Entry> MakeItems(size_t n, double max_edge, uint64_t seed,
                                    BruteForceIndex* oracle = nullptr) {
  Xoshiro256 rng(seed);
  std::vector<rtree::Entry> items;
  for (uint64_t i = 0; i < n; ++i) {
    const auto r = RandomRect(rng, max_edge);
    items.push_back({r, i});
    if (oracle != nullptr) oracle->Insert(r, i);
  }
  return items;
}

class DistributedTraceTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  void SetUp() override {
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    shard::ShardHostConfig cfg;
    cfg.num_shards = kShards;
    cfg.server.heartbeat_interval_us = 1'000;
    cfg.server.tracer = &server_tracer_;
    cfg.min_slop = 0.01;
    host_ = std::make_unique<shard::ShardHost>(*fabric_, cfg);
    items_ = MakeItems(2'000, 0.01, 61, &oracle_);
    host_->Load(items_);
    // Idle heartbeats keep the adaptive controllers deterministically on
    // fast messaging, so every sub-query ships a server span tree back.
    for (uint32_t s = 0; s < kShards; ++s) {
      host_->server(s).OverrideUtilization(0.0);
    }
  }

  void TearDown() override {
    clients_.clear();
    host_->Stop();
  }

  shard::ShardedRTreeClient& Connect(const std::string& name,
                                     bool traced = true) {
    auto node = fabric_->CreateNode(name);
    shard::ShardedClientConfig cfg;
    cfg.client.adaptive.heartbeat_interval_us = 1'000;
    if (traced) {
      cfg.tracer = &tracer_;
      cfg.assembler = &assembler_;
    }
    clients_.push_back(std::make_unique<shard::ShardedRTreeClient>(
        node, [this](uint32_t s) { return host_->Dial(s); }, cfg));
    return *clients_.back();
  }

  // Wide enough to intersect every cell of the 4-shard grid.
  static geo::Rect WideQuery() { return {0.05, 0.05, 0.95, 0.95}; }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<shard::ShardHost> host_;
  std::vector<rtree::Entry> items_;
  std::vector<std::unique_ptr<shard::ShardedRTreeClient>> clients_;
  BruteForceIndex oracle_;
  telemetry::Tracer tracer_;
  telemetry::Tracer server_tracer_;
  telemetry::TraceAssembler assembler_;
};

// The ISSUE's acceptance criterion: a 4-shard fan-out query under
// sampling yields ONE assembled distributed trace whose critical path
// identifies the slowest sub-query's shard and stage, asserted against
// a known-injected straggler.
TEST_F(DistributedTraceTest, CriticalPathNamesInjectedStragglerShardAndStage) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  constexpr uint32_t kStraggler = 2;
  // Large enough to dominate scheduler noise on a loaded machine (a
  // parallel ctest run can stall a sibling shard's thread for tens of
  // milliseconds, which must not out-straggle the injected delay).
  constexpr uint64_t kDelayUs = 60'000;
  host_->server(kStraggler).SetServiceDelayForTest(kDelayUs);

  auto& client = Connect("client-straggler");
  const auto results = client.Search(WideQuery());
  EXPECT_EQ(Ids(results), oracle_.Search(WideQuery()));
  ASSERT_EQ(client.last_fanout(), kShards);
  EXPECT_EQ(client.stats().assembled_traces, 1u);

  // Exactly ONE assembled distributed trace.
  ASSERT_EQ(assembler_.size(), 1u);
  const auto at = assembler_.Assembled()[0];
  ASSERT_NE(at.trace, nullptr);
  EXPECT_TRUE(at.trace->Complete());
  const telemetry::Span& root = at.trace->span(at.trace->root());
  EXPECT_EQ(root.name, "shard.search");
  EXPECT_EQ(root.AttrOr("fanout"), static_cast<int64_t>(kShards));

  // Every sub-query's server tree was shipped back and grafted.
  EXPECT_EQ(at.trace->CountSpans("subquery"), static_cast<size_t>(kShards));
  EXPECT_EQ(at.trace->CountSpans("server.request"),
            static_cast<size_t>(kShards));

  // The critical path reaches the straggler's subquery span (earlier
  // siblings whose service finished before the straggler's was even
  // staged may legitimately precede it on the gating walk), and the
  // costliest hop is the delayed tree walk.
  ASSERT_GE(at.critical.spans.size(), 3u);
  bool straggler_on_path = false;
  for (const telemetry::SpanId id : at.critical.spans) {
    const telemetry::Span& s = at.trace->span(id);
    if (s.name == "subquery" &&
        s.AttrOr("shard", -1) == static_cast<int64_t>(kStraggler)) {
      straggler_on_path = true;
    }
  }
  EXPECT_TRUE(straggler_on_path);
  EXPECT_EQ(at.critical.slowest_shard, static_cast<int64_t>(kStraggler));
  EXPECT_EQ(at.critical.slowest_stage, "traverse");
  // The sleep dominates the hop's exclusive time (scheduler slop aside).
  EXPECT_GE(at.critical.slowest_self_us, kDelayUs / 2);
  EXPECT_GE(at.critical.total_us, at.critical.slowest_self_us);
}

TEST_F(DistributedTraceTest, AssembledTraceExportsAsValidChromeJson) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  constexpr uint32_t kStraggler = 1;
  // Must dominate scheduler noise under a loaded parallel test run,
  // or a stalled sibling shard out-straggles the injected delay.
  host_->server(kStraggler).SetServiceDelayForTest(60'000);
  auto& client = Connect("client-json");
  (void)client.Search(WideQuery());
  ASSERT_EQ(assembler_.size(), 1u);

  const std::string doc = telemetry::TracesToChromeJson(assembler_.Assembled());
  const auto parsed = testjson::Parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  const testjson::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // The straggler's traverse span is present, on the straggler's track,
  // and marked critical.
  size_t complete = 0;
  bool straggler_traverse_critical = false;
  for (const auto& e : events->array) {
    const testjson::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "X") continue;
    ++complete;
    const testjson::Value* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    const testjson::Value* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    if (name->string == "traverse" &&
        e.NumberOr("tid") == kStraggler + 1.0 &&
        args->NumberOr("critical") == 1.0) {
      straggler_traverse_critical = true;
    }
  }
  EXPECT_EQ(complete, assembler_.Assembled()[0].trace->span_count());
  EXPECT_TRUE(straggler_traverse_critical);
}

TEST_F(DistributedTraceTest, RoutedWriteGraftsOwnerShardsTree) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  auto& client = Connect("client-write");
  const geo::Rect r{0.42, 0.42, 0.425, 0.425};
  const auto owner = static_cast<int64_t>(client.map().OwnerOf(r));
  ASSERT_TRUE(client.Insert(r, 900'001));
  ASSERT_EQ(assembler_.size(), 1u);

  const auto at = assembler_.Assembled()[0];
  const telemetry::Span& root = at.trace->span(at.trace->root());
  EXPECT_EQ(root.name, "shard.insert");
  const telemetry::Span* sub = at.trace->Find("subquery");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->AttrOr("shard", -1), owner);
  // The owning shard's server tree came back over the wire and was
  // grafted under the routed-write span.
  const telemetry::Span* remote = at.trace->Find("server.request");
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->AttrOr("remote"), 1);
  EXPECT_EQ(remote->AttrOr("shard", -1), owner);
  EXPECT_EQ(at.critical.slowest_shard, owner);

  // The write itself is exactly-once visible.
  const auto got = client.Search(geo::Rect{0.41, 0.41, 0.43, 0.43});
  EXPECT_TRUE(std::any_of(got.begin(), got.end(),
                          [](const rtree::Entry& e) {
                            return e.id == 900'001;
                          }));
}

TEST_F(DistributedTraceTest, ContextFreeLegacyClientInteroperates) {
  // No tracer, no assembler: every request goes out context-free
  // (byte-identical legacy frames) against servers that trace. Results
  // stay exact and no trace machinery engages on the client.
  auto& legacy = Connect("client-legacy", /*traced=*/false);
  Xoshiro256 rng(67);
  for (int i = 0; i < 40; ++i) {
    const auto q = RandomRect(rng, i % 3 == 0 ? 0.6 : 0.02);
    EXPECT_EQ(Ids(legacy.Search(q)), oracle_.Search(q));
  }
  ASSERT_TRUE(legacy.Insert(geo::Rect{0.3, 0.3, 0.302, 0.302}, 900'002));
  ASSERT_TRUE(legacy.Delete(geo::Rect{0.3, 0.3, 0.302, 0.302}, 900'002));
  EXPECT_EQ(legacy.stats().assembled_traces, 0u);
  EXPECT_EQ(assembler_.size(), 0u);
}

// ---------------------------------------------------------------------------
// DES simulators: sampled requests produce whole distributed trees.
// ---------------------------------------------------------------------------

TEST(DesTraces, ShardedSimEmitsSampledDistributedTraces) {
  const auto items = MakeItems(20'000, 1e-4, 71);
  model::ShardedClusterConfig cfg;
  cfg.scheme = model::Scheme::kCatfish;
  cfg.num_shards = 4;
  cfg.num_clients = 64;
  cfg.requests_per_client = 20;
  cfg.workload.dist = workload::RequestGen::ScaleDist::kPowerLaw;
  cfg.workload.pl_hi = 0.3;
  cfg.workload.insert_ratio = 0.1;
  cfg.seed = 20260808;
  cfg.arena_chunks = 1 << 13;
  cfg.trace_sample_every = 16;
  cfg.trace_retain = 32;
  model::ShardedClusterSim sim(items, cfg);
  const auto r = sim.Run();
  ASSERT_FALSE(r.traces.empty());
  EXPECT_LE(r.traces.size(), cfg.trace_retain);

  for (const auto& t : r.traces) {
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->Complete());
    EXPECT_EQ(t->span(t->root()).name, "shard.search");
    EXPECT_GE(t->CountSpans("subquery"), 1u);
    // Each subquery span carries its shard, and the critical path
    // resolves to a {shard, stage} pair.
    const telemetry::Span* sub = t->Find("subquery");
    ASSERT_NE(sub, nullptr);
    EXPECT_GE(sub->AttrOr("shard", -1), 0);
    const auto cp = telemetry::TraceAssembler::ComputeCriticalPath(*t);
    EXPECT_FALSE(cp.slowest_stage.empty());
    EXPECT_GT(cp.total_us, 0u);
  }

  // The whole batch renders as one valid Chrome JSON document — the
  // same path bench_shard_scaling --trace-json takes.
  const auto doc = telemetry::TracesToChromeJson(
      std::span<const std::shared_ptr<telemetry::Trace>>(r.traces));
  EXPECT_TRUE(testjson::Parse(doc).has_value());
}

TEST(DesTraces, SingleNodeSimTracesFastAndOffloadStages) {
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 15);
  const auto items = MakeItems(20'000, 1e-4, 73);
  rtree::RStarTree tree = rtree::BulkLoad(arena, items);
  model::ClusterConfig cfg;
  cfg.scheme = model::Scheme::kCatfish;
  cfg.num_clients = 64;
  cfg.requests_per_client = 20;
  cfg.workload.dist = workload::RequestGen::ScaleDist::kPowerLaw;
  cfg.workload.pl_hi = 0.3;
  cfg.workload.insert_ratio = 0.1;
  cfg.seed = 20260809;
  cfg.trace_sample_every = 8;
  cfg.trace_retain = 64;
  model::ClusterSim sim(tree, cfg);
  const auto r = sim.Run();
  ASSERT_FALSE(r.traces.empty());
  EXPECT_LE(r.traces.size(), cfg.trace_retain);

  size_t offloaded = 0, fast = 0;
  for (const auto& t : r.traces) {
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->Complete());
    EXPECT_EQ(t->span(t->root()).name, "sim.search");
    EXPECT_GE(t->span(t->root()).AttrOr("client", -1), 0);
    if (t->span(t->root()).AttrOr("offload") == 1) {
      ++offloaded;
      EXPECT_GE(t->CountSpans("offload_round"), 1u);
    } else {
      ++fast;
      // The fast path's four stages, in causal order under the root.
      for (const char* stage : {"net_down", "dequeue", "traverse", "reply"}) {
        EXPECT_NE(t->Find(stage), nullptr) << stage;
      }
    }
  }
  // Catfish adapts: with a power-law workload both paths get sampled.
  EXPECT_GT(fast + offloaded, 0u);
}

}  // namespace
}  // namespace catfish

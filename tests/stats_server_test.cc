// Tests of the live stats endpoint: socket-free rendering (Prometheus
// text, snapshot/timeline/events JSON, HTTP response assembly) plus one
// real localhost GET against the acceptor thread.
#include "tcpkit/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "json_util.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"

namespace catfish::tcpkit {
namespace {

struct Fixture {
  telemetry::Registry reg;
  telemetry::MetricsSampler sampler{&reg};
  telemetry::EventRecorder events;
  StatsServerConfig cfg;

  Fixture() {
    reg.counter("catfish.client.search.fast")->Add(120);
    reg.gauge("catfish.server.utilization")->Set(0.42);
    for (int i = 1; i <= 50; ++i) {
      reg.timer("catfish.client.search_fast_us")->RecordUs(i * 2.0);
    }
    sampler.Tick(0);
    reg.counter("catfish.client.search.offload")->Add(30);
    sampler.Tick(10'000);
    events.Record(telemetry::EventType::kModeSwitch, 5'000, 1, 1.0, 4.0);

    cfg.registry = &reg;
    cfg.sampler = &sampler;
    cfg.events = &events;
  }
};

TEST(StatsServerTest, MetricsTextIsPrometheusShaped) {
  Fixture fx;
  StatsServer srv(fx.cfg);
  const std::string text = srv.MetricsText();
  // Dots become underscores; each metric gets a TYPE line.
  EXPECT_NE(text.find("# TYPE catfish_client_search_fast counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("catfish_client_search_fast 120"), std::string::npos);
  EXPECT_NE(text.find("# TYPE catfish_server_utilization gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE catfish_client_search_fast_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("catfish_client_search_fast_us_count 50"),
            std::string::npos);
}

TEST(StatsServerTest, SnapshotAndEventsJsonParse) {
  Fixture fx;
  StatsServer srv(fx.cfg);
  const auto snap = testjson::Parse(srv.SnapshotJson());
  ASSERT_TRUE(snap.has_value());
  const testjson::Value* counters = snap->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr("catfish.client.search.fast"), 120.0);

  const auto events = testjson::Parse(srv.EventsJson());
  ASSERT_TRUE(events.has_value());
  const testjson::Value* list = events->Find("events");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 1u);
  EXPECT_EQ(list->array[0].Find("type")->string, "mode_switch");
  // Scraping must not consume the flight recorder.
  EXPECT_EQ(fx.events.Peek().size(), 1u);
}

TEST(StatsServerTest, TimelineJsonIsJsonl) {
  Fixture fx;
  StatsServer srv(fx.cfg);
  const auto lines = testjson::ParseLines(srv.TimelineJson());
  ASSERT_TRUE(lines.has_value());
  ASSERT_EQ(lines->size(), 1u);
  const testjson::Value* counters = (*lines)[0].Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("catfish.client.search.offload")->NumberOr("delta"),
            30.0);
}

TEST(StatsServerTest, TimelineEmptyWithoutSampler) {
  Fixture fx;
  fx.cfg.sampler = nullptr;
  StatsServer srv(fx.cfg);
  EXPECT_TRUE(srv.TimelineJson().empty());
}

TEST(StatsServerTest, HealthzReportsReadyUnderNormalLoad) {
  Fixture fx;
  fx.reg.counter("catfish.server.search")->Add(40);
  fx.reg.counter("catfish.server.insert")->Add(2);
  fx.reg.counter("overload.server.sheds")->Add(3);
  fx.reg.counter("breaker.opens")->Add(1);
  fx.reg.counter("shard.client.hedges_issued")->Add(5);
  fx.reg.counter("shard.client.hedges_won")->Add(4);
  StatsServer srv(fx.cfg);

  bool ready = false;
  const auto doc = testjson::Parse(srv.HealthzJson(&ready));
  ASSERT_TRUE(doc.has_value());
  // Utilization 0.42 is under the 0.85 readiness floor → ready, and
  // the cumulative counters ride along for diagnosis.
  EXPECT_TRUE(ready);
  EXPECT_EQ(doc->Find("status")->string, "ok");
  EXPECT_EQ(doc->NumberOr("utilization"), 0.42);
  EXPECT_EQ(doc->NumberOr("served"), 42.0);
  EXPECT_EQ(doc->Find("overload")->NumberOr("sheds"), 3.0);
  EXPECT_EQ(doc->Find("breaker")->NumberOr("opens"), 1.0);
  EXPECT_EQ(doc->Find("hedge")->NumberOr("issued"), 5.0);
  EXPECT_EQ(doc->Find("hedge")->NumberOr("won"), 4.0);
  EXPECT_NE(srv.Respond("/healthz").find("HTTP/1.0 200 OK"),
            std::string::npos);
}

TEST(StatsServerTest, HealthzGoesNotReadyWhenBothOverloadGaugesCross) {
  Fixture fx;
  StatsServer srv(fx.cfg);

  // One signal alone (hot worker, empty queue) must not flip the probe:
  // same two-signal rule as admission control.
  fx.reg.gauge("catfish.server.utilization")->Set(0.99);
  bool ready = false;
  (void)srv.HealthzJson(&ready);
  EXPECT_TRUE(ready);

  fx.reg.gauge("overload.server.queue_delay_us")->Set(5'000.0);
  const auto doc = testjson::Parse(srv.HealthzJson(&ready));
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(ready);
  EXPECT_EQ(doc->Find("status")->string, "overloaded");
  EXPECT_NE(srv.Respond("/healthz").find("HTTP/1.0 503 Service Unavailable"),
            std::string::npos);

  // Relief is instantaneous: the verdict reads live gauges, not the
  // (still non-zero) cumulative counters.
  fx.reg.gauge("catfish.server.utilization")->Set(0.1);
  fx.reg.gauge("overload.server.queue_delay_us")->Set(0.0);
  (void)srv.HealthzJson(&ready);
  EXPECT_TRUE(ready);
}

TEST(StatsServerTest, RespondRoutesAndStatusLines) {
  Fixture fx;
  StatsServer srv(fx.cfg);
  EXPECT_NE(srv.Respond("/metrics").find("HTTP/1.0 200 OK"),
            std::string::npos);
  EXPECT_NE(srv.Respond("/").find("200 OK"), std::string::npos);
  EXPECT_NE(srv.Respond("/snapshot").find("application/json"),
            std::string::npos);
  EXPECT_NE(srv.Respond("/timeline").find("200 OK"), std::string::npos);
  EXPECT_NE(srv.Respond("/events").find("200 OK"), std::string::npos);
  EXPECT_NE(srv.Respond("/nope").find("404"), std::string::npos);
}

TEST(StatsServerTest, ServesRealHttpGet) {
  Fixture fx;
  StatsServer srv(fx.cfg);
  ASSERT_TRUE(srv.ok());
  ASSERT_NE(srv.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req, sizeof(req) - 1, 0),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("catfish_client_search_fast"), std::string::npos);
  srv.Stop();
  srv.Stop();  // idempotent
  EXPECT_FALSE(srv.ok());
}

}  // namespace
}  // namespace catfish::tcpkit

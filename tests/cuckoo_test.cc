#include "cuckoo/cuckoo.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "common/rng.h"
#include "cuckoo/remote_reader.h"
#include "rdmasim/rdma.h"
#include "remote/transport.h"

namespace catfish::cuckoo {
namespace {

TEST(BucketCodecTest, RoundTrip) {
  Bucket b;
  b.slots[0] = {1, 10};
  b.slots[1] = {2, 20};
  b.slots[2] = {3, 30};
  std::vector<std::byte> payload(kBucketBytes);
  EncodeBucket(b, payload);
  Bucket out;
  DecodeBucket(payload, out);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(out.slots[i].key, b.slots[i].key);
    EXPECT_EQ(out.slots[i].value, b.slots[i].value);
  }
  EXPECT_EQ(out.FindKey(2), 1);
  EXPECT_EQ(out.FindKey(99), -1);
  EXPECT_EQ(out.FindFree(), -1);
}

TEST(GeometryTest, BucketToChunkMapping) {
  TableGeometry geo;
  geo.first_chunk = 3;
  geo.num_chunks = 4;
  geo.num_buckets = 64;
  geo.hash_seed = 7;
  EXPECT_EQ(geo.ChunkOfBucket(0), 3u);
  EXPECT_EQ(geo.ChunkOfBucket(15), 3u);
  EXPECT_EQ(geo.ChunkOfBucket(16), 4u);
  EXPECT_EQ(geo.PayloadOffsetOfBucket(0), 0u);
  EXPECT_EQ(geo.PayloadOffsetOfBucket(17), kBucketBytes);
  // Hashes land in range and differ between the two functions for most
  // keys.
  Xoshiro256 rng(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next() | 1;
    const uint64_t b0 = geo.BucketOf(k, 0);
    const uint64_t b1 = geo.BucketOf(k, 1);
    ASSERT_LT(b0, geo.num_buckets);
    ASSERT_LT(b1, geo.num_buckets);
    if (b0 == b1) ++same;
  }
  EXPECT_LT(same, 60);  // ~1/64 expected collisions
}

TEST(CuckooTest, PutGetEraseBasics) {
  NodeArena arena(kChunkSize, 64);
  CuckooTable table = CuckooTable::Create(arena, 64, /*seed=*/11);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Put(42, 420));
  EXPECT_TRUE(table.Put(43, 430));
  EXPECT_EQ(table.Get(42), 420u);
  EXPECT_EQ(table.Get(43), 430u);
  EXPECT_FALSE(table.Get(44).has_value());
  EXPECT_TRUE(table.Put(42, 421));  // overwrite
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Get(42), 421u);
  EXPECT_TRUE(table.Erase(42));
  EXPECT_FALSE(table.Erase(42));
  EXPECT_FALSE(table.Get(42).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(CuckooTest, KeyZeroRejected) {
  NodeArena arena(kChunkSize, 64);
  CuckooTable table = CuckooTable::Create(arena, 16, 1);
  EXPECT_THROW(table.Put(0, 1), std::invalid_argument);
  EXPECT_FALSE(table.Get(0).has_value());
  EXPECT_FALSE(table.Erase(0));
}

class CuckooLoadTest : public ::testing::TestWithParam<double> {};

TEST_P(CuckooLoadTest, FillsToLoadFactorAgainstOracle) {
  // Cuckoo with 2 choices × 3 slots sustains ~90%+ load.
  const double target_load = GetParam();
  NodeArena arena(kChunkSize, 512);
  CuckooTable table = CuckooTable::Create(arena, 1024, /*seed=*/3);
  std::unordered_map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(5);

  const auto target =
      static_cast<uint64_t>(target_load * static_cast<double>(table.capacity()));
  while (table.size() < target) {
    const uint64_t k = rng.Next() | 1;
    const uint64_t v = rng.Next();
    ASSERT_TRUE(table.Put(k, v))
        << "displacement failed at load "
        << static_cast<double>(table.size()) /
               static_cast<double>(table.capacity());
    oracle[k] = v;
  }
  ASSERT_EQ(table.size(), oracle.size());
  for (const auto& [k, v] : oracle) ASSERT_EQ(table.Get(k), v);

  // Erase a third; the rest stay intact.
  size_t removed = 0;
  for (auto it = oracle.begin(); it != oracle.end();) {
    if (removed % 3 == 0) {
      ASSERT_TRUE(table.Erase(it->first));
      it = oracle.erase(it);
    } else {
      ++it;
    }
    ++removed;
  }
  for (const auto& [k, v] : oracle) ASSERT_EQ(table.Get(k), v);
}

INSTANTIATE_TEST_SUITE_P(Loads, CuckooLoadTest,
                         ::testing::Values(0.5, 0.75, 0.9));

TEST(CuckooTest, FullTableReturnsFalseEventually) {
  NodeArena arena(kChunkSize, 8);
  CuckooTable table = CuckooTable::Create(arena, 16, 9);  // 48 slots
  Xoshiro256 rng(6);
  uint64_t inserted = 0;
  for (int i = 0; i < 200; ++i) {
    if (table.Put(rng.Next() | 1, 1)) ++inserted;
  }
  EXPECT_LT(inserted, 200u);           // some must fail
  EXPECT_GT(inserted, 16u * 3 / 2);    // but well past half load
  EXPECT_EQ(table.size(), inserted);
}

// ---------------------------------------------------------------------------
// Remote lookups over the emulated fabric.
// ---------------------------------------------------------------------------

struct RemoteRig {
  NodeArena arena{kChunkSize, 512};
  CuckooTable table = CuckooTable::Create(arena, 1024, /*seed=*/21);
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  std::shared_ptr<rdma::SimNode> server = fabric.CreateNode("server");
  std::shared_ptr<rdma::SimNode> client = fabric.CreateNode("client");
  rdma::MemoryRegionHandle mr;
  std::shared_ptr<rdma::CompletionQueue> cq;
  std::shared_ptr<rdma::QueuePair> qp;
  std::shared_ptr<rdma::QueuePair> server_qp_keepalive;
  std::unique_ptr<remote::QpFetchTransport> transport;

  RemoteRig() {
    mr = server->RegisterMemory(arena.memory());
    auto s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
    cq = client->CreateCq();
    qp = client->CreateQp(cq, client->CreateCq());
    rdma::QueuePair::Connect(s_qp, qp);
    server_qp_keepalive = s_qp;
    transport = std::make_unique<remote::QpFetchTransport>(
        qp, cq, rdma::RemoteAddr{mr.rkey, 0}, kChunkSize);
  }
};

TEST(RemoteCuckooTest, LookupsMatchLocal) {
  RemoteRig rig;
  Xoshiro256 rng(31);
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.Next() | 1;
    const uint64_t v = rng.Next();
    ASSERT_TRUE(rig.table.Put(k, v));
    oracle[k] = v;
  }
  RemoteCuckooReader reader(rig.transport.get(), rig.table.geometry());
  std::optional<uint64_t> got;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(reader.Get(k, got), remote::FetchStatus::kOk);
    ASSERT_EQ(got, v);
  }
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.Next() | 1;
    ASSERT_EQ(reader.Get(k, got), remote::FetchStatus::kOk);
    ASSERT_EQ(got.has_value(), oracle.count(k) == 1);
  }
  // Constant probe cost: ≤ 2 reads per lookup plus rare miss-confirms.
  EXPECT_LE(reader.stats().reads, (oracle.size() + 500) * 3);
}

TEST(RemoteCuckooTest, WorksOverSynchronousCallbackTransport) {
  // The reader is transport-agnostic: a plain synchronous callback (e.g.
  // wrapping a local buffer or an RPC) satisfies the same interface the
  // QP adapter does.
  RemoteRig rig;
  ASSERT_TRUE(rig.table.Put(77, 770));
  remote::CallbackTransport cb(
      [&](rtree::ChunkId id, std::span<std::byte> dst) {
        RelaxedCopy(dst.data(), rig.arena.memory().data() + id * kChunkSize,
                    kChunkSize);
      });
  RemoteCuckooReader reader(&cb, rig.table.geometry());
  std::optional<uint64_t> got;
  ASSERT_EQ(reader.Get(77, got), remote::FetchStatus::kOk);
  EXPECT_EQ(got, 770u);
}

TEST(RemoteCuckooTest, StableKeysSurviveConcurrentDisplacements) {
  RemoteRig rig;
  // Preload a known set.
  std::vector<uint64_t> stable;
  Xoshiro256 rng(41);
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = 1 + rng.NextBounded(1u << 20);
    if (rig.table.Put(k, k * 3)) stable.push_back(k);
  }

  // Writer churns other keys, triggering displacement chains that may
  // move the stable keys between their two buckets.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 wrng(43);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t k = (1ull << 32) + wrng.NextBounded(1u << 12);
      rig.table.Put(k, k);
      if (wrng.NextDouble() < 0.3) rig.table.Erase(k);
    }
  });
  // ASSERT early-returns must still join the writer, or the joinable
  // thread's destructor terminates the process and masks the failure.
  struct JoinGuard {
    std::atomic<bool>& stop;
    std::thread& t;
    ~JoinGuard() {
      stop.store(true);
      if (t.joinable()) t.join();
    }
  } join_guard{stop, writer};

  RemoteCuckooReader reader(rig.transport.get(), rig.table.geometry());
  Xoshiro256 prng(47);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = stable[prng.NextBounded(stable.size())];
    std::optional<uint64_t> v;
    ASSERT_EQ(reader.Get(k, v), remote::FetchStatus::kOk);
    ASSERT_TRUE(v.has_value()) << "stable key " << k << " lost mid-move";
    ASSERT_EQ(*v, k * 3);
  }
}

}  // namespace
}  // namespace catfish::cuckoo

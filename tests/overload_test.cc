// Overload-protection layer end to end: the circuit breaker state
// machine, server-side admission shedding with typed kOverloaded
// replies, client per-op deadline budgets, and the watchdog's absolute
// silence floor that keeps "slow" from reading as "dead".
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "catfish/breaker.h"
#include "catfish/client.h"
#include "catfish/server.h"
#include "common/clock.h"
#include "rtree/bulk_load.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;

// --------------------------------------------------------------------
// CircuitBreaker unit tests (pure state machine, explicit clock).
// --------------------------------------------------------------------

BreakerConfig TestBreaker(uint32_t threshold = 3) {
  BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failure_threshold = threshold;
  cfg.open_initial_us = 10'000;
  cfg.open_max_us = 200'000;
  cfg.half_open_probes = 1;
  return cfg;
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  CircuitBreaker b({}, 1);  // enabled = false
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.OnFailure(1000, 0));
    EXPECT_TRUE(b.Admit(1000));
  }
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.opens(), 0u);
}

TEST(CircuitBreakerTest, TripsAtThresholdAndRejectsWhileOpen) {
  CircuitBreaker b(TestBreaker(3), 7);
  EXPECT_FALSE(b.OnFailure(100));
  EXPECT_FALSE(b.OnFailure(200));
  EXPECT_TRUE(b.Admit(250));  // still closed below threshold
  EXPECT_TRUE(b.OnFailure(300));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 1u);

  // The first window is jittered into [initial/2, initial].
  EXPECT_GE(b.last_open_window_us(), 5'000u);
  EXPECT_LE(b.last_open_window_us(), 10'000u);

  EXPECT_FALSE(b.Admit(300 + 1));
  EXPECT_FALSE(b.Admit(b.open_until_us() - 1));
  EXPECT_EQ(b.fast_fails(), 2u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  CircuitBreaker b(TestBreaker(1), 7);
  ASSERT_TRUE(b.OnFailure(100));
  const uint64_t reopen = b.open_until_us();
  EXPECT_TRUE(b.Admit(reopen));  // window elapsed: probe admitted
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  b.OnSuccess();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  // Streak reset: the next trip starts from the initial window again.
  ASSERT_TRUE(b.OnFailure(reopen + 10));
  EXPECT_LE(b.last_open_window_us(), 10'000u);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediatelyAndWider) {
  CircuitBreaker b(TestBreaker(5), 7);
  for (int i = 0; i < 5; ++i) b.OnFailure(100);
  ASSERT_EQ(b.state(), CircuitBreaker::State::kOpen);
  const uint64_t w1 = b.last_open_window_us();

  ASSERT_TRUE(b.Admit(b.open_until_us()));  // half-open
  // One failure re-opens from Half-open — no threshold run needed —
  // with a doubled ceiling, so the new window is at least the old
  // ceiling's floor.
  EXPECT_TRUE(b.OnFailure(b.open_until_us() + 1));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 2u);
  EXPECT_GE(b.last_open_window_us(), w1 / 2 * 2);
  EXPECT_GE(b.last_open_window_us(), 10'000u);  // [ceiling/2, ceiling], x2
  EXPECT_LE(b.last_open_window_us(), 20'000u);
}

TEST(CircuitBreakerTest, ServerHintFloorsOpenWindow) {
  CircuitBreaker b(TestBreaker(1), 7);
  ASSERT_TRUE(b.OnFailure(100, /*server_hint_us=*/150'000));
  EXPECT_GE(b.last_open_window_us(), 150'000u);
}

TEST(CircuitBreakerTest, WouldRejectIsPure) {
  CircuitBreaker b(TestBreaker(1), 7);
  ASSERT_TRUE(b.OnFailure(100));
  const uint64_t fails = b.fast_fails();
  EXPECT_TRUE(b.WouldReject(101));
  EXPECT_TRUE(b.WouldReject(101));
  EXPECT_EQ(b.fast_fails(), fails);  // no accounting, no state change
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  // Past the window the peek says "admit" without consuming the flip
  // to Half-open — only a real Admit does that.
  EXPECT_FALSE(b.WouldReject(b.open_until_us() + 1));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
}

// --------------------------------------------------------------------
// Live server/client: shedding, deadlines, breaker recovery, watchdog.
// --------------------------------------------------------------------

class OverloadTest : public ::testing::Test {
 protected:
  static constexpr size_t kDatasetSize = 800;

  void SetUpServer(AdmissionConfig admission = {}) {
    fabric_ = std::make_unique<rdma::Fabric>(
        rdma::FabricProfile::InfiniBand100G());
    server_node_ = fabric_->CreateNode("server");
    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 13);
    Xoshiro256 rng(77);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < kDatasetSize; ++i) {
      items.push_back({RandomRect(rng, 0.01), i});
    }
    tree_ = std::make_unique<rtree::RStarTree>(
        rtree::BulkLoad(*arena_, items));
    ServerConfig cfg;
    cfg.admission = admission;
    server_ = std::make_unique<RTreeServer>(server_node_, *tree_, cfg);
  }

  static AdmissionConfig ForcedShedding() {
    // max_queue_delay 0: every frame's dequeue delay qualifies. The
    // utilization gate is then driven by OverrideUtilization alone.
    AdmissionConfig a;
    a.enabled = true;
    a.max_queue_delay_us = 0;
    a.min_utilization = 0.5;
    return a;
  }

  std::unique_ptr<RTreeClient> MakeClient(ClientConfig cfg = {}) {
    return std::make_unique<RTreeClient>(fabric_->CreateNode("client"),
                                         *server_, cfg);
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::shared_ptr<rdma::SimNode> server_node_;
  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<RTreeServer> server_;
};

TEST_F(OverloadTest, AdmissionShedsWithTypedReplyAndHint) {
  SetUpServer(ForcedShedding());
  server_->OverrideUtilization(1.0);
  auto client = MakeClient();
  Xoshiro256 rng(1);

  try {
    client->SearchFast(RandomRect(rng, 0.05));
    FAIL() << "expected kOverloaded";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kOverloaded);
  }
  EXPECT_GE(server_->stats().sheds, 1u);
  EXPECT_EQ(server_->stats().searches, 0u);  // shed before the traversal
  EXPECT_GE(client->stats().overloaded, 1u);
  // Backlog-scaled hint, clamped to the configured floor.
  EXPECT_GE(client->last_retry_after_us(), 1'000u);
}

TEST_F(OverloadTest, SheddingStopsWhenUtilizationClears) {
  SetUpServer(ForcedShedding());
  server_->OverrideUtilization(1.0);
  auto client = MakeClient();
  Xoshiro256 rng(2);
  EXPECT_THROW(client->SearchFast(RandomRect(rng, 0.05)), ClientError);

  // Both signals must agree: below the utilization bound the same
  // queue-delay gauge no longer sheds.
  server_->OverrideUtilization(0.0);
  EXPECT_NO_THROW(client->SearchFast(RandomRect(rng, 0.05)));
  EXPECT_EQ(server_->stats().searches, 1u);
}

TEST_F(OverloadTest, OpDeadlineBoundsTheWaitNotTheServer) {
  SetUpServer();
  server_->SetServiceDelayForTest(50'000);  // every walk takes 50 ms
  ClientConfig cfg;
  cfg.op_deadline_us = 3'000;
  auto client = MakeClient(cfg);
  Xoshiro256 rng(3);

  const auto t0 = std::chrono::steady_clock::now();
  try {
    client->SearchFast(RandomRect(rng, 0.05));
    FAIL() << "expected kDeadlineExpired";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kDeadlineExpired);
  }
  const auto waited = std::chrono::steady_clock::now() - t0;
  // The budget, not the 50 ms service time, bounded the wait.
  EXPECT_LT(waited, 40ms);
  EXPECT_GE(client->stats().deadline_expired, 1u);
}

TEST_F(OverloadTest, BreakerOpensOnShedsAndRecloses) {
  SetUpServer(ForcedShedding());
  server_->OverrideUtilization(1.0);
  ClientConfig cfg;
  cfg.breaker.enabled = true;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_initial_us = 20'000;
  cfg.breaker.open_max_us = 40'000;
  cfg.breaker.half_open_probes = 1;
  auto client = MakeClient(cfg);
  Xoshiro256 rng(4);

  for (int i = 0; i < 2; ++i) {
    try {
      client->SearchFast(RandomRect(rng, 0.05));
      FAIL() << "expected kOverloaded";
    } catch (const ClientError& e) {
      EXPECT_EQ(e.status(), ClientStatus::kOverloaded);
    }
  }
  EXPECT_EQ(client->breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(client->stats().breaker_opens, 1u);

  // While open the request is never sent: the server's shed count
  // stays where the trip left it.
  const uint64_t sheds_at_trip = server_->stats().sheds;
  try {
    client->SearchFast(RandomRect(rng, 0.05));
    FAIL() << "expected kBreakerOpen";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kBreakerOpen);
  }
  EXPECT_EQ(server_->stats().sheds, sheds_at_trip);
  EXPECT_GE(client->stats().breaker_fast_fails, 1u);

  // Server recovers; after the open window the half-open probe goes
  // through, succeeds, and the breaker re-closes.
  server_->OverrideUtilization(0.0);
  std::this_thread::sleep_for(120ms);  // > open_max + hint floor
  EXPECT_NO_THROW(client->SearchFast(RandomRect(rng, 0.05)));
  EXPECT_EQ(client->breaker().state(), CircuitBreaker::State::kClosed);
}

TEST_F(OverloadTest, WatchdogSilenceFloorMasksSlowHeartbeats) {
  // The server's 1 s heartbeat interval guarantees total silence for
  // the duration of the test; the client is told to expect 2 ms beats.
  fabric_ = std::make_unique<rdma::Fabric>(
      rdma::FabricProfile::InfiniBand100G());
  server_node_ = fabric_->CreateNode("server");
  arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 13);
  Xoshiro256 rng(5);
  std::vector<rtree::Entry> items;
  for (uint64_t i = 0; i < kDatasetSize; ++i) {
    items.push_back({RandomRect(rng, 0.01), i});
  }
  tree_ = std::make_unique<rtree::RStarTree>(rtree::BulkLoad(*arena_, items));
  ServerConfig scfg;
  scfg.heartbeat_interval_us = 1'000'000;
  server_ = std::make_unique<RTreeServer>(server_node_, *tree_, scfg);

  ClientConfig base;
  base.watchdog.enabled = true;
  base.adaptive.heartbeat_interval_us = 2'000;
  base.watchdog.suspect_after = 1;
  base.watchdog.disconnect_after = 2;

  // Floor raised past the test horizon: many intervals of silence must
  // not escalate — the op keeps working against the slow-but-alive
  // server (gray failure stays "slow", not "dead").
  ClientConfig floored = base;
  floored.watchdog.min_silence_us = 10'000'000;
  auto patient = MakeClient(floored);
  std::this_thread::sleep_for(30ms);
  EXPECT_NO_THROW(patient->SearchFast(RandomRect(rng, 0.05)));
  EXPECT_EQ(patient->conn_state(), ConnState::kConnected);
  EXPECT_EQ(patient->stats().watchdog_trips, 0u);

  // Same thresholds without the floor: the silence escalates.
  auto jumpy = MakeClient(base);
  std::this_thread::sleep_for(30ms);
  jumpy->Poll();
  EXPECT_EQ(jumpy->conn_state(), ConnState::kDisconnected);
  EXPECT_GE(jumpy->stats().watchdog_trips, 1u);
}

}  // namespace
}  // namespace catfish

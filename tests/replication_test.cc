// Unit + integration tests for the WAL replication plane: the semi-sync
// ack gate, the batch/ack wire codec, the follower apply path
// (gap/replay/epoch semantics), and the full primary→follower shipping
// stack over a simulated fabric — including zombie-primary fencing and
// log-storage resync of a follower that joins late.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "durable/manager.h"
#include "durable/replication.h"
#include "durable/storage.h"
#include "durable/wal.h"
#include "msg/repl.h"
#include "rdmasim/rdma.h"
#include "rtree/node.h"
#include "test_util.h"

namespace catfish::durable {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;
using testutil::WaitUntil;

// ------------------------------------------------------------------- gate

TEST(ReplicationGateTest, PublishReleasesCoveredWaiters) {
  ReplicationGate gate(/*wait_timeout_us=*/0);
  std::thread publisher([&] {
    std::this_thread::sleep_for(1ms);
    gate.Publish(5);
  });
  EXPECT_TRUE(gate.WaitAcked(5));
  publisher.join();
  EXPECT_EQ(gate.acked_lsn(), 5u);
  // Already-covered LSNs return immediately.
  EXPECT_TRUE(gate.WaitAcked(3));
}

TEST(ReplicationGateTest, PublishIsMonotonic) {
  ReplicationGate gate(1'000);
  gate.Publish(9);
  gate.Publish(4);  // stale progress report must not move the gate back
  EXPECT_EQ(gate.acked_lsn(), 9u);
}

TEST(ReplicationGateTest, TimeoutReportsUnackedNeverFalseAcks) {
  ReplicationGate gate(/*wait_timeout_us=*/2'000);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(gate.WaitAcked(1));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 1ms);
  EXPECT_FALSE(gate.fenced());
}

TEST(ReplicationGateTest, FenceFailsUncoveredWaitersImmediately) {
  ReplicationGate gate(/*wait_timeout_us=*/0);
  gate.Publish(2);
  gate.Fence();
  EXPECT_TRUE(gate.fenced());
  // Covered before the fence: still a success (the follower has it).
  EXPECT_TRUE(gate.WaitAcked(2));
  // Uncovered: fails without waiting out any timeout (timeout is 0 =
  // forever, so a hang here would deadlock the test).
  EXPECT_FALSE(gate.WaitAcked(3));
}

// ------------------------------------------------------------------ codec

msg::ReplBatch MakeBatch(size_t count) {
  msg::ReplBatch b;
  b.shard = 3;
  b.epoch = 7;
  b.first_lsn = 100;
  for (size_t i = 0; i < count; ++i) {
    msg::ReplRecord r;
    r.op = (i % 2) ? 2 : 1;
    r.client_gen = 40 + i;
    r.req_id = 900 + i;
    r.rect = geo::Rect{0.1 * (i + 1), 0.2, 0.3 * (i + 1), 0.4};
    r.rect_id = 5'000 + i;
    b.records.push_back(r);
  }
  return b;
}

TEST(ReplCodecTest, BatchRoundTrip) {
  const msg::ReplBatch b = MakeBatch(5);
  const auto frame = msg::Encode(b);
  EXPECT_EQ(frame.size(),
            msg::kReplBatchOverheadBytes + 5 * msg::kReplRecordBytes);
  msg::ReplDecodeStatus ds;
  const auto got = msg::DecodeReplBatch(frame, &ds);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(ds, msg::ReplDecodeStatus::kOk);
  EXPECT_EQ(*got, b);
}

TEST(ReplCodecTest, AckRoundTrip) {
  msg::ReplAck a;
  a.shard = 2;
  a.epoch = 11;
  a.durable_lsn = 4'242;
  a.status = msg::ReplAckStatus::kGap;
  const auto frame = msg::Encode(a);
  EXPECT_EQ(frame.size(), msg::kReplAckBytes);
  const auto got = msg::DecodeReplAck(frame);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, a);
}

TEST(ReplCodecTest, AnyMutationOrTruncationIsRejected) {
  const auto batch = msg::Encode(MakeBatch(3));
  const auto ack = msg::Encode(msg::ReplAck{1, 2, 3, msg::ReplAckStatus::kOk});
  Xoshiro256 rng(17);
  for (int i = 0; i < 64; ++i) {
    auto mutated = batch;
    mutated[rng.NextBounded(mutated.size())] ^=
        static_cast<std::byte>(1u << rng.NextBounded(8));
    EXPECT_FALSE(msg::DecodeReplBatch(mutated).has_value()) << "iter=" << i;
  }
  for (size_t cut = 0; cut < batch.size(); ++cut) {
    std::vector<std::byte> torn(batch.begin(),
                                batch.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(msg::DecodeReplBatch(torn).has_value()) << "cut=" << cut;
  }
  for (size_t cut = 0; cut < ack.size(); ++cut) {
    std::vector<std::byte> torn(ack.begin(),
                                ack.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(msg::DecodeReplAck(torn).has_value()) << "cut=" << cut;
  }
}

TEST(ReplCodecTest, OversizedCountIsRejectedBeforeAllocation) {
  auto frame = msg::Encode(MakeBatch(1));
  // Stamp a count far beyond kMaxReplBatchRecords into the header
  // (offset: magic + ver + reserved + shard + epoch + first_lsn).
  const uint16_t huge = 0xffff;
  std::memcpy(frame.data() + 4 + 2 + 2 + 4 + 8 + 8, &huge, sizeof(huge));
  msg::ReplDecodeStatus ds;
  EXPECT_FALSE(msg::DecodeReplBatch(frame, &ds).has_value());
  EXPECT_NE(ds, msg::ReplDecodeStatus::kOk);
}

// ---------------------------------------------------- follower apply path

class FollowerApplyTest : public ::testing::Test {
 protected:
  static constexpr size_t kChunks = 512;

  void SetUp() override {
    wal_disk_ = std::make_shared<MemLogStorage>();
    ckpt_disk_ = std::make_shared<MemCheckpointStore>();
    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, kChunks);
    mgr_ = std::make_unique<DurabilityManager>(wal_disk_, ckpt_disk_,
                                               DurabilityConfig{});
    tree_.emplace(mgr_->Recover(*arena_));
  }

  static WalRecord Rec(uint64_t lsn, uint64_t epoch = 0) {
    WalRecord rec;
    rec.lsn = lsn;
    rec.op = WalOp::kInsert;
    rec.client_gen = 4;
    rec.req_id = lsn;
    rec.epoch = epoch;
    rec.rect = geo::Rect{0.1, 0.1, 0.2, 0.2};
    rec.rect_id = 1'000 + lsn;
    return rec;
  }

  std::shared_ptr<MemLogStorage> wal_disk_;
  std::shared_ptr<MemCheckpointStore> ckpt_disk_;
  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<DurabilityManager> mgr_;
  std::optional<rtree::RStarTree> tree_;
};

TEST_F(FollowerApplyTest, GapIsRefusedReplayIsHarmless) {
  // A gap (lsn 2 before lsn 1) changes nothing and reports failure.
  EXPECT_FALSE(mgr_->ApplyReplicated(*tree_, Rec(2)));
  EXPECT_EQ(tree_->size(), 0u);

  EXPECT_TRUE(mgr_->ApplyReplicated(*tree_, Rec(1)));
  EXPECT_EQ(tree_->size(), 1u);
  // Replaying an already-applied LSN is idempotent.
  EXPECT_TRUE(mgr_->ApplyReplicated(*tree_, Rec(1)));
  EXPECT_EQ(tree_->size(), 1u);
  EXPECT_TRUE(mgr_->ApplyReplicated(*tree_, Rec(2)));
  EXPECT_EQ(tree_->size(), 2u);

  // Durability is batch-scoped: nothing is durable until CommitThrough.
  EXPECT_EQ(mgr_->durable_lsn(), 0u);
  mgr_->CommitThrough(2);
  EXPECT_EQ(mgr_->durable_lsn(), 2u);
}

TEST_F(FollowerApplyTest, AppliedRecordsFeedTheDedupTable) {
  // Exactly-once must survive a promotion: a client resend against the
  // promoted follower has to be recognized as a duplicate.
  ASSERT_TRUE(mgr_->ApplyReplicated(*tree_, Rec(1)));
  mgr_->CommitThrough(1);
  const auto resend = mgr_->ExecuteInsert(*tree_, /*gen=*/4, /*req=*/1,
                                          geo::Rect{0.1, 0.1, 0.2, 0.2},
                                          1'001);
  EXPECT_TRUE(resend.duplicate);
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(FollowerApplyTest, EpochSurvivesRecoveryViaWalAndCheckpoint) {
  mgr_->SetEpoch(9);
  EXPECT_EQ(mgr_->epoch(), 9u);
  // SetEpoch never moves backwards.
  mgr_->SetEpoch(3);
  EXPECT_EQ(mgr_->epoch(), 9u);
  ASSERT_TRUE(
      mgr_->ExecuteInsert(*tree_, 1, 1, geo::Rect{0.1, 0.1, 0.2, 0.2}, 1).ok);

  // Epoch rides the WAL record through a log-only recovery...
  {
    auto mgr2 = std::make_unique<DurabilityManager>(wal_disk_, ckpt_disk_,
                                                    DurabilityConfig{});
    rtree::NodeArena arena2(rtree::kChunkSize, kChunks);
    auto tree2 = mgr2->Recover(arena2);
    EXPECT_EQ(mgr2->epoch(), 9u);
    // ...and the checkpoint meta through a checkpointed one.
    mgr2->SetEpoch(12);
    mgr2->Checkpoint(tree2);
  }
  auto mgr3 = std::make_unique<DurabilityManager>(wal_disk_, ckpt_disk_,
                                                  DurabilityConfig{});
  rtree::NodeArena arena3(rtree::kChunkSize, kChunks);
  (void)mgr3->Recover(arena3);
  EXPECT_EQ(mgr3->epoch(), 12u);
}

// ------------------------------------------------------------- full stack

// One simulated machine's durable state: disks, arena, manager, tree.
struct Stack {
  std::shared_ptr<rdma::SimNode> node;
  std::shared_ptr<MemLogStorage> wal_disk;
  std::shared_ptr<MemCheckpointStore> ckpt_disk;
  std::unique_ptr<rtree::NodeArena> arena;
  std::unique_ptr<DurabilityManager> mgr;
  std::optional<rtree::RStarTree> tree;
};

class ReplicationStackTest : public ::testing::Test {
 protected:
  static constexpr size_t kChunks = 512;

  void SetUp() override {
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
  }

  Stack MakeStack(const std::string& name) {
    Stack s;
    s.node = fabric_->CreateNode(name);
    s.wal_disk = std::make_shared<MemLogStorage>();
    s.ckpt_disk = std::make_shared<MemCheckpointStore>();
    s.arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, kChunks);
    s.mgr = std::make_unique<DurabilityManager>(s.wal_disk, s.ckpt_disk,
                                                DurabilityConfig{});
    s.tree.emplace(s.mgr->Recover(*s.arena));
    return s;
  }

  static std::vector<uint64_t> ScanIds(rtree::RStarTree& tree) {
    std::vector<rtree::Entry> out;
    tree.Search(geo::Rect{0, 0, 1, 1}, out);
    std::vector<uint64_t> ids;
    for (const auto& e : out) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::unique_ptr<rdma::Fabric> fabric_;
};

TEST_F(ReplicationStackTest, WritesReachEveryFollowerExactlyOnce) {
  Stack primary = MakeStack("primary");
  Stack f1 = MakeStack("follower-1");
  Stack f2 = MakeStack("follower-2");

  ReplChannel ch1(primary.node, f1.node);
  ReplChannel ch2(primary.node, f2.node);
  FollowerApplier a1(*f1.mgr, *f1.tree, &ch1.batch_rx(), &ch1.ack_tx(),
                     {/*shard=*/0});
  FollowerApplier a2(*f2.mgr, *f2.tree, &ch2.batch_rx(), &ch2.ack_tx(),
                     {/*shard=*/0});

  ReplicationShipperConfig cfg;
  cfg.ack_followers = 1;
  ReplicationShipper shipper(*primary.mgr, cfg);
  shipper.AddFollower(&ch1.batch_tx(), &ch1.ack_rx());
  shipper.AddFollower(&ch2.batch_tx(), &ch2.ack_rx());
  a1.Start();
  a2.Start();
  shipper.Start();

  constexpr uint64_t kWrites = 200;
  Xoshiro256 rng(29);
  for (uint64_t req = 1; req <= kWrites; ++req) {
    const auto res = primary.mgr->ExecuteInsert(
        *primary.tree, /*gen=*/1, req, RandomRect(rng, 0.03), req);
    ASSERT_TRUE(res.ok) << "req=" << req;
    // Semi-sync: by the time a write acks, at least one follower holds
    // it durably.
    EXPECT_GE(shipper.quorum_lsn(), res.lsn);
  }

  // Both followers converge on the full log.
  ASSERT_TRUE(WaitUntil([&] {
    return f1.mgr->durable_lsn() == kWrites &&
           f2.mgr->durable_lsn() == kWrites;
  }));
  EXPECT_EQ(ScanIds(*f1.tree), ScanIds(*primary.tree));
  EXPECT_EQ(ScanIds(*f2.tree), ScanIds(*primary.tree));
  f1.tree->CheckInvariants();

  const ShipperStats ss = shipper.stats();
  EXPECT_GE(ss.batches_sent, 2u);  // at least one per follower
  EXPECT_GE(ss.records_shipped, 2 * kWrites);
  EXPECT_EQ(ss.epoch_rejects, 0u);
  EXPECT_EQ(a1.stats().records_applied, kWrites);
  EXPECT_EQ(a1.stats().decode_errors, 0u);

  // A resend of an acked write against a follower (post-promotion
  // shape) is a duplicate, not a second apply.
  shipper.Stop();
  a1.Stop();
  const auto resend = f1.mgr->ExecuteInsert(
      *f1.tree, 1, kWrites, geo::Rect{0.5, 0.5, 0.6, 0.6}, kWrites);
  EXPECT_TRUE(resend.duplicate);
  EXPECT_EQ(f1.tree->size(), kWrites);
  a2.Stop();
}

TEST_F(ReplicationStackTest, GateTimesOutWhenNoFollowerAcks) {
  Stack primary = MakeStack("primary");
  Stack follower = MakeStack("follower");
  ReplChannel ch(primary.node, follower.node);

  ReplicationShipperConfig cfg;
  cfg.gate_timeout_us = 50'000;  // fail fast: the applier is not running
  ReplicationShipper shipper(*primary.mgr, cfg);
  shipper.AddFollower(&ch.batch_tx(), &ch.ack_rx());
  shipper.Start();

  const auto stalled = primary.mgr->ExecuteInsert(
      *primary.tree, 1, 1, geo::Rect{0.1, 0.1, 0.2, 0.2}, 1);
  // Locally durable but never acked: the client must see a failure it
  // can retry, not a false ack.
  EXPECT_FALSE(stalled.ok);
  EXPECT_EQ(primary.mgr->wal().durable_lsn(), 1u);

  // Once the follower comes alive the stream resumes and writes ack
  // again — including coverage of the previously stalled record.
  FollowerApplier applier(*follower.mgr, *follower.tree, &ch.batch_rx(),
                          &ch.ack_tx(), {/*shard=*/0});
  applier.Start();
  ASSERT_TRUE(WaitUntil([&] { return shipper.quorum_lsn() >= 1; }));
  // The 50 ms gate stays deliberately tight here; on a loaded machine a
  // single attempt can still time out, so retry like a real client —
  // the dedup table turns retries into re-acks once the follower
  // catches up.
  ASSERT_TRUE(WaitUntil([&] {
    return primary.mgr
        ->ExecuteInsert(*primary.tree, 1, 2, geo::Rect{0.2, 0.2, 0.3, 0.3}, 2)
        .ok;
  }));
  EXPECT_EQ(follower.tree->size(), 2u);
  shipper.Stop();
  applier.Stop();
}

TEST_F(ReplicationStackTest, ZombiePrimaryIsFencedByHigherFollowerEpoch) {
  Stack primary = MakeStack("primary");
  Stack follower = MakeStack("follower");
  ReplChannel ch(primary.node, follower.node);
  FollowerApplier applier(*follower.mgr, *follower.tree, &ch.batch_rx(),
                          &ch.ack_tx(), {/*shard=*/0});
  ReplicationShipper shipper(*primary.mgr, {});
  shipper.AddFollower(&ch.batch_tx(), &ch.ack_rx());
  applier.Start();
  shipper.Start();

  // The follower was promoted elsewhere: it now serves epoch 5, while
  // this primary still stamps epoch 0.
  follower.mgr->SetEpoch(5);

  const auto res = primary.mgr->ExecuteInsert(
      *primary.tree, 1, 1, geo::Rect{0.1, 0.1, 0.2, 0.2}, 1);
  // The batch bounced (kEpochReject), the gate is fenced: the zombie
  // can still append locally but can never ack a client again.
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(shipper.fenced());
  ASSERT_TRUE(WaitUntil([&] { return shipper.stats().epoch_rejects >= 1; }));
  EXPECT_GE(applier.stats().epoch_rejects, 1u);
  // Nothing from the dead epoch applied on the follower.
  EXPECT_EQ(follower.tree->size(), 0u);

  // Every subsequent write fails immediately — fenced is permanent.
  const auto res2 = primary.mgr->ExecuteInsert(
      *primary.tree, 1, 2, geo::Rect{0.2, 0.2, 0.3, 0.3}, 2);
  EXPECT_FALSE(res2.ok);
  shipper.Stop();
  applier.Stop();
}

TEST_F(ReplicationStackTest, LateFollowerResyncsFromLogStorage) {
  Stack primary = MakeStack("primary");

  // A burst lands before any follower exists (window empty at attach).
  Xoshiro256 rng(31);
  for (uint64_t req = 1; req <= 50; ++req) {
    ASSERT_TRUE(primary.mgr
                    ->ExecuteInsert(*primary.tree, 1, req,
                                    RandomRect(rng, 0.03), req)
                    .ok);
  }

  Stack follower = MakeStack("follower");
  ReplChannel ch(primary.node, follower.node);
  FollowerApplier applier(*follower.mgr, *follower.tree, &ch.batch_rx(),
                          &ch.ack_tx(), {/*shard=*/0});
  ReplicationShipperConfig cfg;
  cfg.max_batch_records = 8;  // force several resync batches
  ReplicationShipper shipper(*primary.mgr, cfg);
  shipper.AddFollower(&ch.batch_tx(), &ch.ack_rx());
  applier.Start();
  shipper.Start();

  // The follower is fed from log storage, not the (empty) window.
  ASSERT_TRUE(WaitUntil([&] { return follower.mgr->durable_lsn() >= 50; }));
  EXPECT_GE(shipper.stats().resyncs, 1u);
  EXPECT_EQ(ScanIds(*follower.tree), ScanIds(*primary.tree));

  // Live tail shipping continues seamlessly after the resync.
  ASSERT_TRUE(primary.mgr
                  ->ExecuteInsert(*primary.tree, 1, 51,
                                  geo::Rect{0.4, 0.4, 0.5, 0.5}, 51)
                  .ok);
  ASSERT_TRUE(WaitUntil([&] { return follower.mgr->durable_lsn() >= 51; }));
  EXPECT_EQ(follower.tree->size(), primary.tree->size());
  shipper.Stop();
  applier.Stop();
}

TEST_F(ReplicationStackTest, TruncateFloorPinsLogUntilFollowersAck) {
  Stack primary = MakeStack("primary");
  Stack follower = MakeStack("follower");
  ReplChannel ch(primary.node, follower.node);
  FollowerApplier applier(*follower.mgr, *follower.tree, &ch.batch_rx(),
                          &ch.ack_tx(), {/*shard=*/0});
  ReplicationShipper shipper(*primary.mgr, {});
  shipper.AddFollower(&ch.batch_tx(), &ch.ack_rx());
  applier.Start();
  shipper.Start();

  Xoshiro256 rng(37);
  for (uint64_t req = 1; req <= 20; ++req) {
    ASSERT_TRUE(primary.mgr
                    ->ExecuteInsert(*primary.tree, 1, req,
                                    RandomRect(rng, 0.03), req)
                    .ok);
  }
  ASSERT_TRUE(WaitUntil([&] { return follower.mgr->durable_lsn() >= 20; }));

  // With every follower caught up, a checkpoint may truncate everything
  // it captured; the floor only pins *unacked* records.
  ASSERT_TRUE(WaitUntil([&] {
    return shipper.follower_acked().front() >= 20;
  }));
  primary.mgr->Checkpoint(*primary.tree);
  EXPECT_EQ(primary.mgr->wal().log_bytes(), 0u);
  shipper.Stop();
  applier.Stop();
}

}  // namespace
}  // namespace catfish::durable

#include "rtree/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace catfish::rtree {
namespace {

using testutil::BruteForceIndex;
using testutil::RandomRect;

std::vector<Entry> MakeItems(uint64_t seed, size_t n, double scale) {
  Xoshiro256 rng(seed);
  std::vector<Entry> items;
  items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    items.push_back(Entry{RandomRect(rng, scale), i});
  }
  return items;
}

std::vector<uint64_t> SearchIds(const RStarTree& tree, const geo::Rect& q) {
  std::vector<Entry> hits;
  tree.Search(q, hits);
  std::vector<uint64_t> ids;
  for (const Entry& e : hits) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(BulkLoadTest, EmptyInput) {
  NodeArena arena(kChunkSize, 64);
  RStarTree tree = BulkLoad(arena, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  tree.CheckInvariants();
}

TEST(BulkLoadTest, SmallInputFitsInRoot) {
  NodeArena arena(kChunkSize, 64);
  const auto items = MakeItems(1, 10, 0.1);
  RStarTree tree = BulkLoad(arena, items);
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.height(), 1u);
  tree.CheckInvariants();
}

class BulkLoadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BulkLoadSweep, MatchesOracleAndInvariants) {
  const size_t n = GetParam();
  NodeArena arena(kChunkSize, 1 << 15);
  const auto items = MakeItems(7, n, 0.01);
  RStarTree tree = BulkLoad(arena, items);
  EXPECT_EQ(tree.size(), n);
  tree.CheckInvariants();

  BruteForceIndex oracle;
  for (const Entry& e : items) oracle.Insert(e.mbr, e.id);
  Xoshiro256 rng(8);
  for (int i = 0; i < 60; ++i) {
    const geo::Rect q = RandomRect(rng, 0.08);
    EXPECT_EQ(SearchIds(tree, q), oracle.Search(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSweep,
                         ::testing::Values(23, 24, 100, 1000, 5000, 20000));

TEST(BulkLoadTest, HeightIsLogarithmic) {
  NodeArena arena(kChunkSize, 1 << 15);
  const auto items = MakeItems(11, 20000, 0.005);
  RStarTree tree = BulkLoad(arena, items);
  // capacity ≈ 19/node → 20000 items needs 3 levels, not more than 4.
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 4u);
}

TEST(BulkLoadTest, MutableAfterLoad) {
  NodeArena arena(kChunkSize, 1 << 14);
  const auto items = MakeItems(13, 5000, 0.01);
  RStarTree tree = BulkLoad(arena, items);

  BruteForceIndex oracle;
  for (const Entry& e : items) oracle.Insert(e.mbr, e.id);

  Xoshiro256 rng(14);
  // Post-load inserts and deletes keep the structure valid.
  for (uint64_t i = 0; i < 500; ++i) {
    const geo::Rect r = RandomRect(rng, 0.01);
    tree.Insert(r, 100000 + i);
    oracle.Insert(r, 100000 + i);
  }
  for (size_t i = 0; i < 500; ++i) {
    const auto& [r, id] = oracle.items()[rng.NextBounded(oracle.size())];
    const geo::Rect rect = r;
    const uint64_t del_id = id;
    EXPECT_TRUE(tree.Delete(rect, del_id));
    EXPECT_TRUE(oracle.Delete(rect, del_id));
  }
  tree.CheckInvariants();
  for (int i = 0; i < 40; ++i) {
    const geo::Rect q = RandomRect(rng, 0.05);
    EXPECT_EQ(SearchIds(tree, q), oracle.Search(q));
  }
}

TEST(BulkLoadTest, CustomFill) {
  NodeArena arena(kChunkSize, 1 << 14);
  BulkLoadConfig cfg;
  cfg.fill = 1.0;
  const auto items = MakeItems(15, 4600, 0.01);  // 200 full leaves
  RStarTree tree = BulkLoad(arena, items, cfg);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 4600u);
}

}  // namespace
}  // namespace catfish::rtree

#include "rtree/rstar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace catfish::rtree {
namespace {

using testutil::BruteForceIndex;
using testutil::RandomRect;

std::vector<uint64_t> SearchIds(const RStarTree& tree, const geo::Rect& q) {
  std::vector<Entry> hits;
  tree.Search(q, hits);
  std::vector<uint64_t> ids;
  ids.reserve(hits.size());
  for (const Entry& e : hits) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(RStarTreeTest, EmptyTreeSearchFindsNothing) {
  NodeArena arena(kChunkSize, 64);
  RStarTree tree = RStarTree::Create(arena);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<Entry> out;
  EXPECT_EQ(tree.Search(geo::Rect{0, 0, 1, 1}, out), 0u);
  tree.CheckInvariants();
}

TEST(RStarTreeTest, SingleInsertAndExactSearch) {
  NodeArena arena(kChunkSize, 64);
  RStarTree tree = RStarTree::Create(arena);
  const geo::Rect r{0.1, 0.1, 0.2, 0.2};
  tree.Insert(r, 7);
  EXPECT_EQ(tree.size(), 1u);

  std::vector<Entry> out;
  EXPECT_EQ(tree.Search(r, out), 1u);
  EXPECT_EQ(out[0].id, 7u);
  out.clear();
  EXPECT_EQ(tree.Search(geo::Rect{0.5, 0.5, 0.6, 0.6}, out), 0u);
  tree.CheckInvariants();
}

TEST(RStarTreeTest, InvalidRectThrows) {
  NodeArena arena(kChunkSize, 64);
  RStarTree tree = RStarTree::Create(arena);
  EXPECT_THROW(tree.Insert(geo::Rect{1, 1, 0, 0}, 1), std::invalid_argument);
}

TEST(RStarTreeTest, DuplicateRectsAllowed) {
  NodeArena arena(kChunkSize, 256);
  RStarTree tree = RStarTree::Create(arena);
  const geo::Rect r{0.4, 0.4, 0.5, 0.5};
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(r, i);
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_EQ(SearchIds(tree, r).size(), 50u);
  tree.CheckInvariants();
}

TEST(RStarTreeTest, RootSplitGrowsHeight) {
  NodeArena arena(kChunkSize, 256);
  RStarTree tree = RStarTree::Create(arena);
  Xoshiro256 rng(17);
  uint64_t id = 0;
  while (tree.height() == 1) {
    tree.Insert(RandomRect(rng, 0.05), id++);
    ASSERT_LT(id, 1000u);
  }
  EXPECT_EQ(tree.height(), 2u);
  tree.CheckInvariants();
  // Everything still findable after the split.
  EXPECT_EQ(SearchIds(tree, geo::Rect{0, 0, 1, 1}).size(), tree.size());
}

TEST(RStarTreeTest, DeleteMissingReturnsFalse) {
  NodeArena arena(kChunkSize, 64);
  RStarTree tree = RStarTree::Create(arena);
  tree.Insert(geo::Rect{0.1, 0.1, 0.2, 0.2}, 1);
  EXPECT_FALSE(tree.Delete(geo::Rect{0.1, 0.1, 0.2, 0.2}, 2));   // wrong id
  EXPECT_FALSE(tree.Delete(geo::Rect{0.3, 0.3, 0.4, 0.4}, 1));   // wrong rect
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, DeleteToEmptyAndReuse) {
  NodeArena arena(kChunkSize, 512);
  RStarTree tree = RStarTree::Create(arena);
  Xoshiro256 rng(23);
  std::vector<std::pair<geo::Rect, uint64_t>> items;
  for (uint64_t i = 0; i < 300; ++i) {
    const geo::Rect r = RandomRect(rng, 0.05);
    items.emplace_back(r, i);
    tree.Insert(r, i);
  }
  tree.CheckInvariants();
  for (const auto& [r, id] : items) EXPECT_TRUE(tree.Delete(r, id));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  tree.CheckInvariants();
  // The tree stays usable after full drain.
  tree.Insert(geo::Rect{0.5, 0.5, 0.6, 0.6}, 999);
  EXPECT_EQ(SearchIds(tree, geo::Rect{0, 0, 1, 1}),
            std::vector<uint64_t>{999});
}

TEST(RStarTreeTest, SearchTracedReportsLevels) {
  NodeArena arena(kChunkSize, 4096);
  RStarTree tree = RStarTree::Create(arena);
  Xoshiro256 rng(31);
  for (uint64_t i = 0; i < 2000; ++i) tree.Insert(RandomRect(rng, 0.01), i);
  ASSERT_GE(tree.height(), 2u);

  std::vector<Entry> out;
  SearchStats stats;
  TraversalTrace trace;
  tree.SearchTraced(geo::Rect{0.2, 0.2, 0.4, 0.4}, out, &stats, &trace);
  EXPECT_EQ(stats.results, out.size());
  EXPECT_EQ(stats.nodes_visited, trace.TotalNodes());
  // The trace has at most `height` rounds and starts at the root.
  EXPECT_LE(trace.Rounds(), tree.height());
  ASSERT_FALSE(trace.nodes_per_level.empty());
  EXPECT_EQ(trace.nodes_per_level[0], 1u);
}

TEST(RStarTreeTest, AttachRecoversMetadata) {
  NodeArena arena(kChunkSize, 512);
  {
    RStarTree tree = RStarTree::Create(arena);
    Xoshiro256 rng(41);
    for (uint64_t i = 0; i < 200; ++i) tree.Insert(RandomRect(rng, 0.1), i);
  }
  RStarTree again = RStarTree::Attach(arena);
  EXPECT_EQ(again.size(), 200u);
  EXPECT_GE(again.height(), 2u);
  EXPECT_EQ(SearchIds(again, geo::Rect{0, 0, 1, 1}).size(), 200u);
  again.CheckInvariants();
}

TEST(RStarTreeTest, AttachToEmptyArenaThrows) {
  NodeArena arena(kChunkSize, 64);
  EXPECT_THROW(RStarTree::Attach(arena), std::runtime_error);
}

TEST(RStarTreeTest, ForcedReinsertDisabledStillCorrect) {
  NodeArena arena(kChunkSize, 2048);
  RStarConfig cfg;
  cfg.forced_reinsert = false;
  RStarTree tree = RStarTree::Create(arena, cfg);
  BruteForceIndex oracle;
  Xoshiro256 rng(47);
  for (uint64_t i = 0; i < 1500; ++i) {
    const geo::Rect r = RandomRect(rng, 0.02);
    tree.Insert(r, i);
    oracle.Insert(r, i);
  }
  tree.CheckInvariants();
  for (int i = 0; i < 50; ++i) {
    const geo::Rect q = RandomRect(rng, 0.2);
    EXPECT_EQ(SearchIds(tree, q), oracle.Search(q));
  }
}

// ---------------------------------------------------------------------------
// k nearest neighbors
// ---------------------------------------------------------------------------

std::vector<uint64_t> BruteKnn(
    const std::vector<std::pair<geo::Rect, uint64_t>>& items,
    const geo::Point& p, size_t k) {
  std::vector<std::pair<double, uint64_t>> dists;
  dists.reserve(items.size());
  for (const auto& [r, id] : items) dists.emplace_back(geo::MinDist2(r, p), id);
  std::sort(dists.begin(), dists.end());
  std::vector<uint64_t> out;
  for (size_t i = 0; i < std::min(k, dists.size()); ++i) {
    out.push_back(dists[i].second);
  }
  return out;
}

TEST(RStarTreeKnnTest, MatchesBruteForce) {
  NodeArena arena(kChunkSize, 1 << 14);
  RStarTree tree = RStarTree::Create(arena);
  BruteForceIndex oracle;
  Xoshiro256 rng(61);
  for (uint64_t i = 0; i < 3000; ++i) {
    const auto r = RandomRect(rng, 0.01);
    tree.Insert(r, i);
    oracle.Insert(r, i);
  }
  for (int trial = 0; trial < 50; ++trial) {
    const geo::Point p{rng.NextDouble(), rng.NextDouble()};
    const size_t k = 1 + rng.NextBounded(20);
    std::vector<Entry> got;
    SearchStats stats;
    ASSERT_EQ(tree.NearestNeighbors(p, k, got, &stats), k);
    const auto want = BruteKnn(oracle.items(), p, k);
    // Distances must agree (ids can differ under exact ties).
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < k; ++i) {
      double want_d = 0;
      for (const auto& [r, id] : oracle.items()) {
        if (id == want[i]) want_d = geo::MinDist2(r, p);
      }
      ASSERT_NEAR(geo::MinDist2(got[i].mbr, p), want_d, 1e-12);
    }
    // Best-first visits far fewer nodes than the whole tree.
    EXPECT_LT(stats.nodes_visited, tree.size() / 19);
  }
}

TEST(RStarTreeKnnTest, ResultsSortedByDistance) {
  NodeArena arena(kChunkSize, 1 << 12);
  RStarTree tree = RStarTree::Create(arena);
  Xoshiro256 rng(62);
  for (uint64_t i = 0; i < 800; ++i) tree.Insert(RandomRect(rng, 0.02), i);
  const geo::Point p{0.5, 0.5};
  std::vector<Entry> got;
  tree.NearestNeighbors(p, 25, got);
  ASSERT_EQ(got.size(), 25u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(geo::MinDist2(got[i - 1].mbr, p), geo::MinDist2(got[i].mbr, p));
  }
}

TEST(RStarTreeKnnTest, KLargerThanTreeReturnsAll) {
  NodeArena arena(kChunkSize, 256);
  RStarTree tree = RStarTree::Create(arena);
  Xoshiro256 rng(63);
  for (uint64_t i = 0; i < 10; ++i) tree.Insert(RandomRect(rng, 0.1), i);
  std::vector<Entry> got;
  EXPECT_EQ(tree.NearestNeighbors({0.1, 0.1}, 50, got), 10u);
  EXPECT_EQ(tree.NearestNeighbors({0.1, 0.1}, 0, got), 0u);
}

TEST(GeoMinDistTest, PointToRect) {
  const geo::Rect r{0.2, 0.2, 0.4, 0.4};
  EXPECT_DOUBLE_EQ(geo::MinDist2(r, {0.3, 0.3}), 0.0);      // inside
  EXPECT_DOUBLE_EQ(geo::MinDist2(r, {0.2, 0.2}), 0.0);      // corner
  EXPECT_DOUBLE_EQ(geo::MinDist2(r, {0.0, 0.3}), 0.04);     // left
  EXPECT_DOUBLE_EQ(geo::MinDist2(r, {0.3, 0.5}), 0.01);     // above
  EXPECT_NEAR(geo::MinDist2(r, {0.0, 0.0}), 0.08, 1e-12);   // diagonal
}

// ---------------------------------------------------------------------------
// Randomized differential test against the brute-force oracle, swept over
// dataset size, rectangle scale, and workload mix.
// ---------------------------------------------------------------------------

struct OracleParam {
  uint64_t seed;
  size_t inserts;
  double rect_scale;
  double delete_ratio;  // of the inserted set, deleted mid-run
};

class RStarOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(RStarOracleTest, MatchesBruteForce) {
  const OracleParam p = GetParam();
  NodeArena arena(kChunkSize, 1 << 15);
  RStarTree tree = RStarTree::Create(arena);
  BruteForceIndex oracle;
  Xoshiro256 rng(p.seed);

  std::vector<std::pair<geo::Rect, uint64_t>> live;
  for (uint64_t i = 0; i < p.inserts; ++i) {
    const geo::Rect r = RandomRect(rng, p.rect_scale);
    tree.Insert(r, i);
    oracle.Insert(r, i);
    live.emplace_back(r, i);
  }
  ASSERT_EQ(tree.size(), oracle.size());

  // Delete a random subset.
  const size_t deletes =
      static_cast<size_t>(p.delete_ratio * static_cast<double>(live.size()));
  for (size_t i = 0; i < deletes; ++i) {
    const size_t pick = rng.NextBounded(live.size());
    const auto [r, id] = live[pick];
    live[pick] = live.back();
    live.pop_back();
    EXPECT_TRUE(tree.Delete(r, id));
    EXPECT_TRUE(oracle.Delete(r, id));
  }
  ASSERT_EQ(tree.size(), oracle.size());
  tree.CheckInvariants();

  // Differential queries at several scales, incl. whole-space.
  for (const double qscale : {0.001, 0.05, 0.3}) {
    for (int i = 0; i < 40; ++i) {
      const geo::Rect q = RandomRect(rng, qscale);
      EXPECT_EQ(SearchIds(tree, q), oracle.Search(q));
    }
  }
  EXPECT_EQ(SearchIds(tree, geo::Rect{0, 0, 1, 1}).size(), oracle.size());

  // CollectAll agrees with the oracle contents.
  std::vector<Entry> all;
  tree.CollectAll(all);
  EXPECT_EQ(all.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RStarOracleTest,
    ::testing::Values(OracleParam{1, 100, 0.05, 0.0},
                      OracleParam{2, 800, 0.02, 0.5},
                      OracleParam{3, 3000, 0.01, 0.3},
                      OracleParam{4, 3000, 0.2, 0.9},
                      OracleParam{5, 6000, 0.001, 0.2},
                      OracleParam{6, 500, 0.5, 0.97},
                      // Degenerate geometries: zero-area points/lines and
                      // heavy duplication stress tie-breaking paths.
                      OracleParam{7, 2000, 0.0, 0.4},
                      OracleParam{8, 1500, 1e-9, 0.6}));

// ---------------------------------------------------------------------------
// Concurrency: optimistic readers vs a writer thread. Readers must always
// see a consistent tree (no torn nodes, no crashes) and eventually observe
// all inserted data.
// ---------------------------------------------------------------------------

TEST(RStarTreeConcurrencyTest, ReadersNeverSeeTornNodes) {
  NodeArena arena(kChunkSize, 1 << 14);
  RStarTree tree = RStarTree::Create(arena);
  Xoshiro256 seed_rng(99);
  // Preload so readers have something to traverse.
  for (uint64_t i = 0; i < 500; ++i)
    tree.Insert(RandomRect(seed_rng, 0.02), i);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::thread writer([&] {
    Xoshiro256 rng(100);
    uint64_t id = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      tree.Insert(RandomRect(rng, 0.02), id++);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(200 + static_cast<uint64_t>(t));
      std::vector<Entry> out;
      while (!stop.load(std::memory_order_relaxed)) {
        out.clear();
        const geo::Rect q = RandomRect(rng, 0.1);
        SearchStats stats;
        tree.SearchTraced(q, out, &stats, nullptr);
        // Every hit really intersects the query (consistency check).
        for (const Entry& e : out) ASSERT_TRUE(e.mbr.Intersects(q));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace catfish::rtree

// Sharded chaos suite: crash one shard of a durable 4-shard deployment
// mid-burst and assert the scale-out invariants:
//  * clients converge onto the republished routing table (stale-map
//    detection → per-shard re-bootstrap → map adoption) in bounded time;
//  * exactly-once writes across the crash — every acked insert is
//    present exactly once afterwards (WAL-durable, not double-applied by
//    client retries), un-acked inserts are present at most once;
//  * the untouched shards keep serving throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "shard/client.h"
#include "shard/host.h"
#include "telemetry/events.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;

class ShardChaosTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  void SetUp() override {
    telemetry::EventRecorder::Global().Clear();
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    shard::ShardHostConfig cfg;
    cfg.num_shards = kShards;
    cfg.server.heartbeat_interval_us = 1'000;
    cfg.durable = true;
    // Small enough that the write burst trips real mid-test checkpoints
    // on the crashed shard, so recovery replays checkpoint + WAL tail.
    cfg.durability.checkpoint_wal_bytes = 32 * 1024;
    cfg.min_slop = 0.01;
    host_ = std::make_unique<shard::ShardHost>(*fabric_, cfg);

    Xoshiro256 rng(11);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 2'000; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      loaded_.push_back({r, i});
    }
    host_->Load(items);
  }

  void TearDown() override { host_->Stop(); }

  std::unique_ptr<shard::ShardedRTreeClient> Connect(
      const std::string& name) {
    auto node = fabric_->CreateNode(name);
    shard::ShardedClientConfig cfg;
    cfg.client.adaptive.heartbeat_interval_us = 1'000;
    cfg.client.watchdog.enabled = true;
    cfg.client.watchdog.suspect_after = 5;
    cfg.client.watchdog.disconnect_after = 15;
    cfg.client.request_timeout_us = 2'000'000;
    cfg.client.remote_retry.max_attempts = 8;
    cfg.client.remote_retry.backoff_base_us = 1;
    cfg.client.remote_retry.backoff_cap_us = 50;
    // A checkpoint or a crash can stall a write past several timeouts;
    // the per-shard session retries with the original req_id — that,
    // plus server-side dedup, is the exactly-once protocol under test.
    cfg.client.write_attempts = 50;
    return std::make_unique<shard::ShardedRTreeClient>(
        node, [this](uint32_t s) { return host_->Dial(s); }, cfg);
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<shard::ShardHost> host_;
  std::vector<std::pair<geo::Rect, uint64_t>> loaded_;
};

TEST_F(ShardChaosTest, SingleShardRestartMidBurstKeepsWritesExactlyOnce) {
  constexpr int kWriters = 3;
  constexpr uint64_t kWritesPerThread = 300;

  std::mutex mu;
  std::vector<std::pair<geo::Rect, uint64_t>> acked;
  std::vector<uint64_t> unacked;

  std::atomic<bool> crashed{false};
  // Connect before the crash timer starts: a bootstrap that races into
  // the restart window throws by contract (fresh clients retry
  // construction); the test is about established clients riding it out.
  std::vector<std::unique_ptr<shard::ShardedRTreeClient>> writer_clients;
  for (int t = 0; t < kWriters; ++t) {
    writer_clients.push_back(Connect("writer-" + std::to_string(t)));
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      shard::ShardedRTreeClient* client = writer_clients[t].get();
      Xoshiro256 rng(100 + t);
      for (uint64_t i = 0; i < kWritesPerThread; ++i) {
        const auto r = RandomRect(rng, 0.01);
        const uint64_t id = 10'000 + t * kWritesPerThread + i;
        try {
          ASSERT_TRUE(client->Insert(r, id));
          const std::scoped_lock lock(mu);
          acked.emplace_back(r, id);
        } catch (const shard::ShardError&) {
          // The crash window: the write may or may not have landed, but
          // it must not land twice.
          const std::scoped_lock lock(mu);
          unacked.push_back(id);
        }
        // Interleave reads so the burst exercises fan-out during the
        // outage too; failures are expected while a shard is down.
        if (i % 16 == 0) {
          try {
            (void)client->Search(RandomRect(rng, 0.4));
          } catch (const shard::ShardError&) {
          }
        }
      }
    });
  }

  // Crash/reboot shard 2 mid-burst: its rkeys and QPNs die, its state
  // is rebuilt from checkpoint + WAL, and the host republishes the map.
  std::this_thread::sleep_for(30ms);
  host_->RestartShard(2);
  crashed.store(true);
  for (auto& w : writers) w.join();

  ASSERT_TRUE(crashed.load());
  EXPECT_EQ(host_->map_version(), 2u);

  // A fresh client sees the republished map immediately; the invariant
  // check below runs over the union of all shards through it.
  auto checker = Connect("checker");
  EXPECT_EQ(checker->map().version, 2u);

  // Count every id's multiplicity with one full-region scan.
  const geo::Rect all{-1.0, -1.0, 2.0, 2.0};
  std::vector<uint64_t> ids;
  for (const auto& e : checker->Search(all)) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());

  auto count_of = [&ids](uint64_t id) {
    const auto [lo, hi] = std::equal_range(ids.begin(), ids.end(), id);
    return static_cast<size_t>(hi - lo);
  };
  for (const auto& [rect, id] : loaded_) {
    EXPECT_EQ(count_of(id), 1u) << "bulk-loaded id " << id;
  }
  {
    const std::scoped_lock lock(mu);
    for (const auto& [rect, id] : acked) {
      EXPECT_EQ(count_of(id), 1u) << "acked insert " << id;
    }
    for (const uint64_t id : unacked) {
      EXPECT_LE(count_of(id), 1u) << "unacked insert " << id;
    }
    // The run must have produced a meaningful burst on both sides.
    EXPECT_GT(acked.size(), kWritesPerThread);
  }
}

TEST_F(ShardChaosTest, SurvivingClientConvergesToRepublishedMap) {
  auto client = Connect("survivor");
  Xoshiro256 rng(21);

  // Warm up against map v1 on every shard.
  for (int i = 0; i < 20; ++i) {
    ASSERT_NO_THROW((void)client->Search(RandomRect(rng, 0.5)));
  }
  ASSERT_EQ(client->map().version, 1u);
  const uint64_t old_gen = client->map().shards[1].generation;

  host_->RestartShard(1);
  ASSERT_EQ(host_->map_version(), 2u);

  // Keep operating: sub-queries against shard 1 fail while it is down,
  // then its connection re-bootstraps and the next operation adopts the
  // republished table. Bounded, not eventual-forever.
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          (void)client->Search(RandomRect(rng, 0.5));
        } catch (const shard::ShardError&) {
        }
        return client->map().version == 2;
      },
      15s));
  EXPECT_GT(client->map().shards[1].generation, old_gen);
  EXPECT_GE(client->stats().map_refreshes, 1u);

  // Untouched shards kept their identity across the republish.
  for (const uint32_t s : {0u, 2u, 3u}) {
    EXPECT_EQ(client->map().shards[s].generation,
              client->shard_client(s).server_generation());
  }

  // Post-convergence, fan-out queries are whole again: a scan must see
  // every bulk-loaded item exactly once (shard 1 recovered its slice).
  std::vector<uint64_t> ids;
  for (const auto& e : client->Search(geo::Rect{-1.0, -1.0, 2.0, 2.0})) {
    ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), loaded_.size());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());

#if CATFISH_TELEMETRY_ENABLED
  // The flight recorder saw the routing-table refresh.
  bool saw_refresh = false;
  for (const auto& e : telemetry::EventRecorder::Global().Drain()) {
    if (e.type == telemetry::EventType::kShardMapRefresh && e.a == 2.0) {
      saw_refresh = true;
    }
  }
  EXPECT_TRUE(saw_refresh);
#endif
}

}  // namespace
}  // namespace catfish

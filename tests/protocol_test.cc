#include "msg/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace catfish::msg {
namespace {

TEST(ProtocolTest, SearchRequestRoundTrip) {
  const SearchRequest req{42, geo::Rect{0.1, 0.2, 0.3, 0.4}, {}};
  const auto decoded = DecodeSearchRequest(Encode(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->req_id, 42u);
  EXPECT_EQ(decoded->rect, req.rect);
}

TEST(ProtocolTest, InsertRequestRoundTrip) {
  const InsertRequest req{7, 11, geo::Rect{0.5, 0.6, 0.7, 0.8}, 1234, {}};
  const auto decoded = DecodeInsertRequest(Encode(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->req_id, 7u);
  EXPECT_EQ(decoded->client_gen, 11u);
  EXPECT_EQ(decoded->rect, req.rect);
  EXPECT_EQ(decoded->rect_id, 1234u);
}

TEST(ProtocolTest, DeleteRequestRoundTrip) {
  const DeleteRequest req{8, 12, geo::Rect{0.0, 0.0, 0.1, 0.1}, 99, {}};
  const auto decoded = DecodeDeleteRequest(Encode(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->client_gen, 12u);
  EXPECT_EQ(decoded->rect_id, 99u);
}

TEST(ProtocolTest, WriteRequestsRejectPreGenerationWireSize) {
  // The pre-exactly-once 56-byte insert/delete frame must not decode: a
  // silent field shift would hand the dedup table a garbage identity.
  auto encoded = Encode(InsertRequest{7, 11, geo::Rect{0, 0, 1, 1}, 5, {}});
  encoded.resize(encoded.size() - 8);
  EXPECT_FALSE(DecodeInsertRequest(encoded).has_value());
  EXPECT_FALSE(DecodeDeleteRequest(encoded).has_value());
}

TEST(ProtocolTest, WriteAckRoundTrip) {
  const auto decoded = DecodeWriteAck(Encode(WriteAck{21, 1}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->req_id, 21u);
  EXPECT_EQ(decoded->ok, 1);
}

TEST(ProtocolTest, HeartbeatRoundTrip) {
  const auto decoded = DecodeHeartbeat(Encode(Heartbeat{5, 0.97, 12345, 3}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_DOUBLE_EQ(decoded->cpu_util, 0.97);
  EXPECT_EQ(decoded->tree_epoch, 12345u);
  EXPECT_EQ(decoded->server_generation, 3u);
}

TEST(ProtocolTest, HeartbeatMapVersionTailRoundTrip) {
  // A zero map version (single-node server) encodes to the legacy
  // 32-byte frame — sharding must not change the wire for old setups.
  const auto legacy = Encode(Heartbeat{5, 0.97, 12345, 3});
  EXPECT_EQ(legacy.size(), 32u);
  ASSERT_TRUE(DecodeHeartbeat(legacy).has_value());
  EXPECT_EQ(DecodeHeartbeat(legacy)->map_version, 0u);

  // A sharded host's heartbeat appends the routing-table version.
  const auto sharded = Encode(Heartbeat{5, 0.97, 12345, 3, 9});
  EXPECT_EQ(sharded.size(), 40u);
  const auto decoded = DecodeHeartbeat(sharded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_EQ(decoded->server_generation, 3u);
  EXPECT_EQ(decoded->map_version, 9u);

  // A partial tail is torn, not "version zero".
  auto torn = sharded;
  torn.resize(36);
  EXPECT_FALSE(DecodeHeartbeat(torn).has_value());
}

TEST(ProtocolTest, HeartbeatReplicationTailRoundTrip) {
  // A replicated node appends role + epoch + durable LSN; the presence
  // of this tail forces the map-version tail too (even when 0), so
  // every frame size remains unambiguous: 32, 40 or 57 bytes.
  Heartbeat hb{5, 0.5, 100, 3};
  hb.role = static_cast<uint8_t>(ReplRole::kFollower);
  hb.epoch = 7;
  hb.durable_lsn = 4'242;
  const auto replicated = Encode(hb);
  EXPECT_EQ(replicated.size(), 57u);
  const auto decoded = DecodeHeartbeat(replicated);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->map_version, 0u);
  EXPECT_EQ(decoded->role, static_cast<uint8_t>(ReplRole::kFollower));
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->durable_lsn, 4'242u);

  // With both tails live, everything round-trips.
  hb.map_version = 9;
  hb.role = static_cast<uint8_t>(ReplRole::kPrimary);
  const auto both = DecodeHeartbeat(Encode(hb));
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(both->map_version, 9u);
  EXPECT_EQ(both->role, static_cast<uint8_t>(ReplRole::kPrimary));

  // An unreplicated node (role none) never emits the tail: the frame is
  // byte-identical to the sharded (40) or legacy (32) format.
  hb.role = static_cast<uint8_t>(ReplRole::kNone);
  hb.epoch = 0;
  hb.durable_lsn = 0;
  EXPECT_EQ(Encode(hb).size(), 40u);

  // Every cut between the valid sizes is torn, not reinterpreted.
  for (size_t cut = 41; cut < 57; ++cut) {
    auto torn = replicated;
    torn.resize(cut);
    EXPECT_FALSE(DecodeHeartbeat(torn).has_value()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, HeartbeatRejectsOldWireSize) {
  // The pre-generation 24-byte heartbeat must not decode: a silent
  // truncation here would hand the watchdog a garbage generation.
  auto encoded = Encode(Heartbeat{5, 0.97, 12345, 3});
  encoded.resize(24);
  EXPECT_FALSE(DecodeHeartbeat(encoded).has_value());
}

TEST(ProtocolTest, DecodersRejectWrongSizes) {
  std::vector<std::byte> junk(7, std::byte{1});
  EXPECT_FALSE(DecodeSearchRequest(junk).has_value());
  EXPECT_FALSE(DecodeInsertRequest(junk).has_value());
  EXPECT_FALSE(DecodeDeleteRequest(junk).has_value());
  EXPECT_FALSE(DecodeWriteAck(junk).has_value());
  EXPECT_FALSE(DecodeHeartbeat(junk).has_value());
  EXPECT_FALSE(DecodeSearchResponseSegment(junk).has_value());
}

TEST(ProtocolTest, EmptySearchResponseStillOneSegment) {
  const auto segments = EncodeSearchResponse(9, {}, 1 << 16);
  ASSERT_EQ(segments.size(), 1u);
  const auto seg = DecodeSearchResponseSegment(segments[0]);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->req_id, 9u);
  EXPECT_TRUE(seg->entries.empty());
}

TEST(ProtocolTest, ResponseSegmentationSplitsAndPreservesOrder) {
  Xoshiro256 rng(3);
  std::vector<rtree::Entry> entries;
  for (uint64_t i = 0; i < 1000; ++i) {
    entries.push_back({testutil::RandomRect(rng, 0.1), i});
  }
  // Max payload fits 100 entries per segment.
  const size_t max_payload = 12 + 100 * kWireEntryBytes;
  const auto segments = EncodeSearchResponse(77, entries, max_payload);
  EXPECT_EQ(segments.size(), 10u);

  uint64_t next_id = 0;
  for (const auto& raw : segments) {
    ASSERT_LE(raw.size(), max_payload);
    const auto seg = DecodeSearchResponseSegment(raw);
    ASSERT_TRUE(seg.has_value());
    EXPECT_EQ(seg->req_id, 77u);
    for (const auto& e : seg->entries) {
      EXPECT_EQ(e.id, next_id);
      EXPECT_EQ(e.mbr, entries[next_id].mbr);
      ++next_id;
    }
  }
  EXPECT_EQ(next_id, 1000u);
}

TEST(ProtocolTest, SegmentationHandlesNonDivisibleCounts) {
  std::vector<rtree::Entry> entries(7);
  const size_t max_payload = 12 + 3 * kWireEntryBytes;
  const auto segments = EncodeSearchResponse(1, entries, max_payload);
  EXPECT_EQ(segments.size(), 3u);  // 3 + 3 + 1
  const auto last = DecodeSearchResponseSegment(segments.back());
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->entries.size(), 1u);
}

TEST(ProtocolTest, TraceContextTailRoundTripsOnAllRequestTypes) {
  const TraceContext ctx{0xdeadbeefcafeull, 17, 1};
  ASSERT_TRUE(ctx.present());

  SearchRequest sreq{42, geo::Rect{0.1, 0.2, 0.3, 0.4}, ctx};
  const auto sdec = DecodeSearchRequest(Encode(sreq));
  ASSERT_TRUE(sdec.has_value());
  EXPECT_EQ(sdec->trace.trace_id, ctx.trace_id);
  EXPECT_EQ(sdec->trace.parent_span, 17u);
  EXPECT_EQ(sdec->trace.sampled, 1);

  InsertRequest ireq{7, 11, geo::Rect{0, 0, 1, 1}, 5, ctx};
  const auto idec = DecodeInsertRequest(Encode(ireq));
  ASSERT_TRUE(idec.has_value());
  EXPECT_EQ(idec->trace.trace_id, ctx.trace_id);
  EXPECT_EQ(idec->req_id, 7u);  // leading fields unshifted by the tail

  DeleteRequest dreq{8, 12, geo::Rect{0, 0, 1, 1}, 9, ctx};
  const auto ddec = DecodeDeleteRequest(Encode(dreq));
  ASSERT_TRUE(ddec.has_value());
  EXPECT_EQ(ddec->trace.trace_id, ctx.trace_id);
  EXPECT_EQ(ddec->trace.sampled, 1);
}

TEST(ProtocolTest, ContextFreeRequestsStayByteIdenticalToLegacyFrames) {
  // The tail is appended only when a context is present, so a legacy
  // (context-free) client and a tracing-capable one produce the exact
  // same bytes — interop is byte-level, not just semantic.
  const auto legacy_search =
      Encode(SearchRequest{42, geo::Rect{0.1, 0.2, 0.3, 0.4}, {}});
  EXPECT_EQ(legacy_search.size(), 40u);
  const auto legacy_insert =
      Encode(InsertRequest{7, 11, geo::Rect{0, 0, 1, 1}, 5, {}});
  EXPECT_EQ(legacy_insert.size(), 56u);
  const auto legacy_delete =
      Encode(DeleteRequest{8, 12, geo::Rect{0, 0, 1, 1}, 9, {}});
  EXPECT_EQ(legacy_delete.size(), 56u);

  // Decoding the legacy frame yields an absent context, not garbage.
  const auto sdec = DecodeSearchRequest(legacy_search);
  ASSERT_TRUE(sdec.has_value());
  EXPECT_FALSE(sdec->trace.present());
  EXPECT_EQ(sdec->trace.sampled, 0);

  // And a present context grows each frame by exactly the tail.
  const TraceContext ctx{1, 0, 1};
  EXPECT_EQ(Encode(SearchRequest{42, sdec->rect, ctx}).size(),
            40u + kTraceContextBytes);
  EXPECT_EQ(Encode(InsertRequest{7, 11, geo::Rect{0, 0, 1, 1}, 5, ctx}).size(),
            56u + kTraceContextBytes);
}

TEST(ProtocolTest, TruncatedOrOversizedTraceTailsAreRejected) {
  const TraceContext ctx{99, 3, 1};
  auto stamped = Encode(SearchRequest{1, geo::Rect{0, 0, 1, 1}, ctx});
  ASSERT_EQ(stamped.size(), 40u + kTraceContextBytes);

  // A torn tail (any length strictly between legacy and stamped) must
  // not decode as a shifted context — with one carve-out: cutting to
  // exactly base+8 aliases the deadline-only layout (sizes are the
  // only discriminator), so that length decodes with an absent context
  // and the trace-id bytes reinterpreted as a deadline.
  for (size_t cut = 1; cut < kTraceContextBytes; ++cut) {
    auto torn = stamped;
    torn.resize(stamped.size() - cut);
    const auto dec = DecodeSearchRequest(torn);
    if (cut == kTraceContextBytes - kDeadlineTailBytes) {
      ASSERT_TRUE(dec.has_value());
      EXPECT_FALSE(dec->trace.present());
      EXPECT_EQ(dec->deadline_us, ctx.trace_id);
    } else {
      EXPECT_FALSE(dec.has_value()) << "cut=" << cut;
    }
  }

  // Trailing junk beyond the tail is rejected too.
  auto oversized = stamped;
  oversized.push_back(std::byte{0xff});
  EXPECT_FALSE(DecodeSearchRequest(oversized).has_value());

  // Same discipline on the write requests.
  auto istamped = Encode(InsertRequest{1, 2, geo::Rect{0, 0, 1, 1}, 3, ctx});
  istamped.resize(istamped.size() - 1);
  EXPECT_FALSE(DecodeInsertRequest(istamped).has_value());
  auto dstamped = Encode(DeleteRequest{1, 2, geo::Rect{0, 0, 1, 1}, 3, ctx});
  dstamped.resize(dstamped.size() - 1);
  EXPECT_FALSE(DecodeDeleteRequest(dstamped).has_value());
}

TEST(ProtocolTest, UnsampledContextStillRoundTrips) {
  // present() is keyed on trace_id alone: an unsampled-but-present
  // context (sampled=0) must survive the wire so a server can decline
  // to trace without mistaking the request for a legacy frame.
  const TraceContext ctx{77, 5, 0};
  ASSERT_TRUE(ctx.present());
  const auto dec = DecodeSearchRequest(
      Encode(SearchRequest{1, geo::Rect{0, 0, 1, 1}, ctx}));
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->trace.present());
  EXPECT_EQ(dec->trace.sampled, 0);
  EXPECT_EQ(dec->trace.parent_span, 5u);
}

TEST(ProtocolTest, DeadlineTailRoundTripsWithAndWithoutTrace) {
  // All four size-discriminated layouts: base, +deadline, +trace,
  // +trace+deadline. The deadline tail rides AFTER the trace tail.
  const TraceContext ctx{0xfeedull, 9, 1};
  const geo::Rect rect{0.1, 0.2, 0.3, 0.4};
  const uint64_t dl = 123'456'789;

  const auto base = Encode(SearchRequest{1, rect, {}, 0});
  const auto with_dl = Encode(SearchRequest{1, rect, {}, dl});
  const auto with_tr = Encode(SearchRequest{1, rect, ctx, 0});
  const auto with_both = Encode(SearchRequest{1, rect, ctx, dl});
  EXPECT_EQ(with_dl.size(), base.size() + kDeadlineTailBytes);
  EXPECT_EQ(with_tr.size(), base.size() + kTraceContextBytes);
  EXPECT_EQ(with_both.size(),
            base.size() + kTraceContextBytes + kDeadlineTailBytes);

  for (const auto* frame : {&base, &with_dl, &with_tr, &with_both}) {
    const auto dec = DecodeSearchRequest(*frame);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->req_id, 1u);
    const bool has_dl = frame == &with_dl || frame == &with_both;
    const bool has_tr = frame == &with_tr || frame == &with_both;
    EXPECT_EQ(dec->deadline_us, has_dl ? dl : 0u);
    EXPECT_EQ(dec->trace.present(), has_tr);
    if (has_tr) {
      EXPECT_EQ(dec->trace.parent_span, 9u);
    }
  }

  // Same tail on the write requests, leading fields unshifted.
  const auto idec = DecodeInsertRequest(
      Encode(InsertRequest{7, 11, rect, 5, ctx, dl}));
  ASSERT_TRUE(idec.has_value());
  EXPECT_EQ(idec->req_id, 7u);
  EXPECT_EQ(idec->rect_id, 5u);
  EXPECT_EQ(idec->deadline_us, dl);
  EXPECT_TRUE(idec->trace.present());

  const auto ddec = DecodeDeleteRequest(
      Encode(DeleteRequest{8, 12, rect, 9, {}, dl}));
  ASSERT_TRUE(ddec.has_value());
  EXPECT_EQ(ddec->deadline_us, dl);
  EXPECT_FALSE(ddec->trace.present());
}

TEST(ProtocolTest, DeadlineFreeRequestsStayByteIdenticalToLegacyFrames) {
  // deadline_us == 0 must not grow the frame: a pre-deadline peer and a
  // deadline-capable one emitting "no deadline" produce the same bytes.
  EXPECT_EQ(Encode(SearchRequest{42, geo::Rect{0.1, 0.2, 0.3, 0.4}, {}, 0})
                .size(),
            40u);
  EXPECT_EQ(Encode(InsertRequest{7, 11, geo::Rect{0, 0, 1, 1}, 5, {}, 0})
                .size(),
            56u);
  EXPECT_EQ(Encode(DeleteRequest{8, 12, geo::Rect{0, 0, 1, 1}, 9, {}, 0})
                .size(),
            56u);
}

TEST(ProtocolTest, TornDeadlineTailsAreRejected) {
  // Truncations of a trace+deadline frame: the only cuts that decode
  // are the ones that land exactly on another layout's size — cutting
  // the 8-byte deadline leaves the genuine trace-only frame, and
  // cutting the 13-byte suffix leaves base+8, which size discrimination
  // cannot distinguish from a deadline-only frame (the leading trace-id
  // bytes reinterpret as a deadline — the documented blind spot of
  // size-discriminated tails, harmless because frames ride reliable
  // rings that never truncate). Every other cut must be rejected.
  const TraceContext ctx{3, 1, 1};
  const auto full =
      Encode(SearchRequest{1, geo::Rect{0, 0, 1, 1}, ctx, 55});
  for (size_t cut = 1; cut < kTraceContextBytes + kDeadlineTailBytes; ++cut) {
    auto torn = full;
    torn.resize(full.size() - cut);
    const auto dec = DecodeSearchRequest(torn);
    if (cut == kDeadlineTailBytes) {
      // Legitimate trace-only layout: decodes, deadline absent.
      ASSERT_TRUE(dec.has_value());
      EXPECT_EQ(dec->deadline_us, 0u);
      EXPECT_TRUE(dec->trace.present());
    } else if (cut == kTraceContextBytes) {
      // Aliases the deadline-only layout (trace id → deadline).
      ASSERT_TRUE(dec.has_value());
      EXPECT_EQ(dec->deadline_us, ctx.trace_id);
      EXPECT_FALSE(dec->trace.present());
    } else {
      EXPECT_FALSE(dec.has_value()) << "cut=" << cut;
    }
  }
}

TEST(ProtocolTest, OverloadReplyRoundTrip) {
  const auto dec = DecodeOverloadReply(Encode(OverloadReply{91, 750}));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->req_id, 91u);
  EXPECT_EQ(dec->retry_after_us, 750u);

  // retry_after 0 ("do not retry") is a meaningful value, not absence.
  const auto noretry = DecodeOverloadReply(Encode(OverloadReply{92, 0}));
  ASSERT_TRUE(noretry.has_value());
  EXPECT_EQ(noretry->retry_after_us, 0u);

  std::vector<std::byte> junk(11, std::byte{7});
  EXPECT_FALSE(DecodeOverloadReply(junk).has_value());
  std::vector<std::byte> oversized(13, std::byte{7});
  EXPECT_FALSE(DecodeOverloadReply(oversized).has_value());
}

TEST(ProtocolTest, TraceResponseRoundTrip) {
  // An empty blob is the "request was sampled but I have no tracer"
  // arrival marker — it must round-trip as empty, not fail to decode.
  const auto empty = DecodeTraceResponse(Encode(TraceResponse{31, {}}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->req_id, 31u);
  EXPECT_TRUE(empty->blob.empty());

  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  const auto full = DecodeTraceResponse(Encode(TraceResponse{32, blob}));
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->req_id, 32u);
  EXPECT_EQ(full->blob, blob);

  std::vector<std::byte> junk(7, std::byte{1});
  EXPECT_FALSE(DecodeTraceResponse(junk).has_value());
}

}  // namespace
}  // namespace catfish::msg

#include "btree/bplus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "btree/remote_reader.h"
#include "common/rng.h"
#include "rdmasim/rdma.h"
#include "remote/transport.h"

namespace catfish::btree {
namespace {

TEST(BNodeCodecTest, RoundTrip) {
  BNodeData node;
  node.self = 9;
  node.level = 2;
  node.count = 3;
  node.next = 17;
  node.entries[0] = {10, 100};
  node.entries[1] = {20, 200};
  node.entries[2] = {30, 300};
  std::vector<std::byte> payload(rtree::PayloadCapacity(kChunkSize));
  EncodeBNode(node, payload);
  BNodeData out;
  ASSERT_TRUE(DecodeBNode(payload, out));
  EXPECT_EQ(out.self, 9u);
  EXPECT_EQ(out.level, 2);
  EXPECT_EQ(out.count, 3);
  EXPECT_EQ(out.next, 17u);
  EXPECT_EQ(out.entries[1].key, 20u);
  EXPECT_EQ(out.entries[2].value, 300u);
}

TEST(BNodeCodecTest, RejectsGarbage) {
  std::vector<std::byte> junk(rtree::PayloadCapacity(kChunkSize),
                              std::byte{0xff});
  BNodeData out;
  EXPECT_FALSE(DecodeBNode(junk, out));
}

TEST(BNodeDataTest, ChildIndexSelection) {
  BNodeData node;
  node.level = 1;
  node.count = 3;
  node.entries[0] = {10, 100};
  node.entries[1] = {20, 200};
  node.entries[2] = {30, 300};
  EXPECT_EQ(node.ChildIndexFor(5), 0u);    // below all separators
  EXPECT_EQ(node.ChildIndexFor(10), 0u);
  EXPECT_EQ(node.ChildIndexFor(19), 0u);
  EXPECT_EQ(node.ChildIndexFor(20), 1u);
  EXPECT_EQ(node.ChildIndexFor(29), 1u);
  EXPECT_EQ(node.ChildIndexFor(1000), 2u);
}

TEST(BNodeDataTest, LowerBound) {
  BNodeData node;
  node.count = 3;
  node.entries[0] = {10, 0};
  node.entries[1] = {20, 0};
  node.entries[2] = {30, 0};
  EXPECT_EQ(node.LowerBound(5), 0u);
  EXPECT_EQ(node.LowerBound(10), 0u);
  EXPECT_EQ(node.LowerBound(11), 1u);
  EXPECT_EQ(node.LowerBound(30), 2u);
  EXPECT_EQ(node.LowerBound(31), 3u);
}

TEST(BPlusTreeTest, EmptyTree) {
  NodeArena arena(kChunkSize, 64);
  BPlusTree tree = BPlusTree::Create(arena);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_FALSE(tree.Get(42).has_value());
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(0, ~0ull, out), 0u);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, PutGetOverwrite) {
  NodeArena arena(kChunkSize, 64);
  BPlusTree tree = BPlusTree::Create(arena);
  tree.Put(5, 50);
  tree.Put(3, 30);
  tree.Put(8, 80);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Get(5), 50u);
  EXPECT_EQ(tree.Get(3), 30u);
  EXPECT_FALSE(tree.Get(4).has_value());
  tree.Put(5, 55);  // overwrite does not grow
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Get(5), 55u);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  NodeArena arena(kChunkSize, 4096);
  BPlusTree tree = BPlusTree::Create(arena);
  uint64_t key = 1;
  while (tree.height() < 3) {
    tree.Put(key, key * 2);
    ++key;
    ASSERT_LT(key, 100'000u);
  }
  tree.CheckInvariants();
  for (uint64_t k = 1; k < key; ++k) EXPECT_EQ(tree.Get(k), k * 2);
}

TEST(BPlusTreeTest, EraseAndLazyDeletion) {
  NodeArena arena(kChunkSize, 4096);
  BPlusTree tree = BPlusTree::Create(arena);
  for (uint64_t k = 1; k <= 500; ++k) tree.Put(k, k);
  for (uint64_t k = 1; k <= 500; k += 2) EXPECT_TRUE(tree.Erase(k));
  EXPECT_FALSE(tree.Erase(1));  // already gone
  EXPECT_EQ(tree.size(), 250u);
  for (uint64_t k = 1; k <= 500; ++k) {
    EXPECT_EQ(tree.Get(k).has_value(), k % 2 == 0);
  }
  tree.CheckInvariants();
  // Scans skip erased keys.
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(1, 500, out), 250u);
}

TEST(BPlusTreeTest, ScanRanges) {
  NodeArena arena(kChunkSize, 4096);
  BPlusTree tree = BPlusTree::Create(arena);
  for (uint64_t k = 0; k < 1000; k += 10) tree.Put(k, k);
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(100, 199, out), 10u);
  EXPECT_EQ(out.front().key, 100u);
  EXPECT_EQ(out.back().key, 190u);
  out.clear();
  EXPECT_EQ(tree.Scan(101, 109, out), 0u);
  out.clear();
  EXPECT_EQ(tree.Scan(0, ~0ull, out), 100u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].key, out[i].key);  // globally sorted via chain
  }
}

struct BTreeParam {
  uint64_t seed;
  size_t n;
  int pattern;  // 0 random, 1 ascending, 2 descending
};

class BPlusTreeOracleTest : public ::testing::TestWithParam<BTreeParam> {};

TEST_P(BPlusTreeOracleTest, MatchesStdMap) {
  const auto p = GetParam();
  NodeArena arena(kChunkSize, 1 << 14);
  BPlusTree tree = BPlusTree::Create(arena);
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(p.seed);

  for (size_t i = 0; i < p.n; ++i) {
    uint64_t key;
    switch (p.pattern) {
      case 1: key = i + 1; break;
      case 2: key = p.n - i; break;
      default: key = 1 + rng.NextBounded(1u << 30); break;
    }
    const uint64_t value = rng.Next();
    tree.Put(key, value);
    oracle[key] = value;
  }
  ASSERT_EQ(tree.size(), oracle.size());
  tree.CheckInvariants();

  // Point lookups: all present keys plus misses.
  for (const auto& [k, v] : oracle) ASSERT_EQ(tree.Get(k), v);
  for (int i = 0; i < 200; ++i) {
    const uint64_t k = 1 + rng.NextBounded(1u << 30);
    const auto it = oracle.find(k);
    const auto got = tree.Get(k);
    ASSERT_EQ(got.has_value(), it != oracle.end());
  }

  // Random range scans.
  for (int i = 0; i < 30; ++i) {
    uint64_t lo = rng.NextBounded(1u << 30);
    uint64_t hi = lo + rng.NextBounded(1u << 20);
    std::vector<KeyValue> got;
    tree.Scan(lo, hi, got);
    auto it = oracle.lower_bound(lo);
    size_t expect = 0;
    for (; it != oracle.end() && it->first <= hi; ++it, ++expect) {
      ASSERT_LT(expect, got.size());
      ASSERT_EQ(got[expect].key, it->first);
      ASSERT_EQ(got[expect].value, it->second);
    }
    ASSERT_EQ(got.size(), expect);
  }

  // Delete half, re-verify.
  size_t removed = 0;
  for (auto it = oracle.begin(); it != oracle.end();) {
    if (rng.NextDouble() < 0.5) {
      ASSERT_TRUE(tree.Erase(it->first));
      it = oracle.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  ASSERT_EQ(tree.size(), oracle.size());
  tree.CheckInvariants();
  for (const auto& [k, v] : oracle) ASSERT_EQ(tree.Get(k), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeOracleTest,
    ::testing::Values(BTreeParam{1, 100, 0}, BTreeParam{2, 5000, 0},
                      BTreeParam{3, 20000, 0}, BTreeParam{4, 5000, 1},
                      BTreeParam{5, 5000, 2}));

// ---------------------------------------------------------------------------
// Remote (offloaded) access over the emulated RDMA fabric.
// ---------------------------------------------------------------------------

struct RemoteRig {
  NodeArena arena{kChunkSize, 1 << 14};
  BPlusTree tree = BPlusTree::Create(arena);
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  std::shared_ptr<rdma::SimNode> server = fabric.CreateNode("server");
  std::shared_ptr<rdma::SimNode> client = fabric.CreateNode("client");
  rdma::MemoryRegionHandle mr;
  std::shared_ptr<rdma::CompletionQueue> cq;
  std::shared_ptr<rdma::QueuePair> qp;
  std::shared_ptr<rdma::QueuePair> server_qp_keepalive;
  std::unique_ptr<remote::QpFetchTransport> transport;

  RemoteRig() {
    mr = server->RegisterMemory(arena.memory());
    auto s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
    cq = client->CreateCq();
    qp = client->CreateQp(cq, client->CreateCq());
    rdma::QueuePair::Connect(s_qp, qp);
    server_qp_keepalive = s_qp;
    transport = std::make_unique<remote::QpFetchTransport>(
        qp, cq, rdma::RemoteAddr{mr.rkey, 0}, kChunkSize);
  }
};

TEST(RemoteBTreeTest, LookupsMatchLocal) {
  RemoteRig rig;
  Xoshiro256 rng(9);
  std::map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = 1 + rng.NextBounded(1 << 20);
    const uint64_t v = rng.Next();
    rig.tree.Put(k, v);
    oracle[k] = v;
  }
  RemoteBTreeReader reader(rig.transport.get());
  std::optional<uint64_t> got;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(reader.Get(k, got), remote::FetchStatus::kOk);
    ASSERT_EQ(got, v);
  }
  ASSERT_EQ(reader.Get(1u << 30, got), remote::FetchStatus::kOk);
  EXPECT_FALSE(got.has_value());
  EXPECT_GT(reader.stats().reads, 0u);
  EXPECT_EQ(reader.stats().version_retries, 0u);  // no concurrent writer
}

TEST(RemoteBTreeTest, RemoteScanFollowsLeafChain) {
  RemoteRig rig;
  for (uint64_t k = 1; k <= 3000; ++k) rig.tree.Put(k, k * 7);
  RemoteBTreeReader reader(rig.transport.get());
  std::vector<KeyValue> out;
  ASSERT_EQ(reader.Scan(500, 1499, out), remote::FetchStatus::kOk);
  ASSERT_EQ(out.size(), 1000u);
  EXPECT_EQ(out.front().key, 500u);
  EXPECT_EQ(out.back().key, 1499u);
  for (const auto& kv : out) EXPECT_EQ(kv.value, kv.key * 7);
}

TEST(RemoteBTreeTest, ConsistentUnderConcurrentWriter) {
  RemoteRig rig;
  // Preload stable keys in a disjoint range from the writer's churn.
  for (uint64_t k = 1; k <= 2000; ++k) rig.tree.Put(k, k);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(4);
    uint64_t k = 1'000'000;
    while (!stop.load(std::memory_order_relaxed)) {
      rig.tree.Put(k + rng.NextBounded(50'000), rng.Next());
      ++k;
    }
  });

  RemoteBTreeReader reader(rig.transport.get());
  Xoshiro256 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = 1 + rng.NextBounded(2000);
    std::optional<uint64_t> v;
    ASSERT_EQ(reader.Get(k, v), remote::FetchStatus::kOk);
    ASSERT_TRUE(v.has_value()) << "stable key " << k << " lost";
    ASSERT_EQ(*v, k);
  }
  stop.store(true);
  writer.join();
  rig.tree.CheckInvariants();
}

}  // namespace
}  // namespace catfish::btree

#include "geo/rect.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace catfish::geo {
namespace {

TEST(RectTest, AreaAndMargin) {
  const Rect r{0.0, 0.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
  EXPECT_DOUBLE_EQ(r.width(), 2.0);
  EXPECT_DOUBLE_EQ(r.height(), 3.0);
}

TEST(RectTest, DegenerateRectHasZeroArea) {
  const Rect point{0.5, 0.5, 0.5, 0.5};
  EXPECT_TRUE(point.IsValid());
  EXPECT_DOUBLE_EQ(point.Area(), 0.0);
  const Rect line{0.0, 0.5, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(line.Area(), 0.0);
  EXPECT_DOUBLE_EQ(line.Margin(), 1.0);
}

TEST(RectTest, EmptyIsUnionIdentity) {
  const Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  const Rect r{0.1, 0.2, 0.3, 0.4};
  EXPECT_EQ(e.Union(r), r);
  EXPECT_EQ(r.Union(e), r);
}

TEST(RectTest, UnionCovers) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  const Rect b{2.0, 2.0, 3.0, 3.0};
  const Rect u = a.Union(b);
  EXPECT_EQ(u, (Rect{0.0, 0.0, 3.0, 3.0}));
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(RectTest, IntersectionBasics) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  const Rect b{1.0, 1.0, 3.0, 3.0};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersection(b), (Rect{1.0, 1.0, 2.0, 2.0}));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);

  const Rect c{5.0, 5.0, 6.0, 6.0};
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersection(c).IsEmpty());
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
}

TEST(RectTest, SharedEdgeCountsAsIntersection) {
  // Closed-interval semantics: touching rectangles overlap.
  const Rect a{0.0, 0.0, 1.0, 1.0};
  const Rect b{1.0, 0.0, 2.0, 1.0};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 0.0);
}

TEST(RectTest, ContainsAndPoints) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(a.Contains(Rect{0.25, 0.25, 0.75, 0.75}));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Rect{0.5, 0.5, 1.5, 0.6}));
  EXPECT_TRUE(a.ContainsPoint({0.0, 0.0}));
  EXPECT_TRUE(a.ContainsPoint({1.0, 1.0}));
  EXPECT_FALSE(a.ContainsPoint({1.0001, 0.5}));
}

TEST(RectTest, Enlargement) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect{0.2, 0.2, 0.8, 0.8}), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect{0.0, 0.0, 2.0, 1.0}), 1.0);
}

TEST(RectTest, CenterDistance) {
  const Rect a{0.0, 0.0, 2.0, 2.0};   // center (1,1)
  const Rect b{3.0, 4.0, 5.0, 6.0};   // center (4,5)
  EXPECT_DOUBLE_EQ(CenterDistance2(a, b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(CenterDistance2(a, a), 0.0);
}

// Property sweep: algebraic invariants on random rectangles.
class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, RandomizedInvariants) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Rect a = testutil::RandomRect(rng, 0.5);
    const Rect b = testutil::RandomRect(rng, 0.5);

    // Union is commutative and covering.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_TRUE(a.Union(b).Contains(a));
    EXPECT_TRUE(a.Union(b).Contains(b));

    // Intersection symmetric; intersects ⇔ non-empty intersection
    // (up to degenerate touching, where area is 0 but intersect is true).
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    EXPECT_EQ(a.Intersects(b), a.Intersection(b).IsValid());

    // Enlargement is non-negative; zero iff contained.
    EXPECT_GE(a.Enlargement(b), 0.0);
    if (a.Contains(b)) {
      EXPECT_DOUBLE_EQ(a.Enlargement(b), 0.0);
    }

    // Inclusion–exclusion bound: overlap ≤ min area.
    EXPECT_LE(a.OverlapArea(b), std::min(a.Area(), b.Area()) + 1e-15);

    // Union area ≥ both areas; ≤ sum when overlapping is counted once.
    EXPECT_GE(a.Union(b).Area() + 1e-15, std::max(a.Area(), b.Area()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1u, 42u, 2026u, 777u));

}  // namespace
}  // namespace catfish::geo

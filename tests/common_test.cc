#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/spsc_queue.h"
#include "common/stats.h"

namespace catfish {
namespace {

TEST(RngTest, Deterministic) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedRange) {
  Xoshiro256 rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Roughly uniform: each bucket within 10% of the expectation.
  for (const int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(RngTest, PowerLawBoundsAndSkew) {
  Xoshiro256 rng(11);
  int low_half = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.PowerLaw(0.00001, 0.01, -0.99);
    EXPECT_GE(v, 0.00001);
    EXPECT_LE(v, 0.01);
    // f(t) ∝ t^-0.99 strongly favours the small end of the range.
    if (v < 0.001) ++low_half;
  }
  EXPECT_GT(low_half, n / 2);
}

TEST(RunningStatTest, Moments) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Xoshiro256 rng(5);
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100;
    all.Add(v);
    (i % 2 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(LogHistogramTest, QuantilesApproximate) {
  LogHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.p50(), 5000, 5000 * 0.03);
  EXPECT_NEAR(h.p95(), 9500, 9500 * 0.03);
  EXPECT_NEAR(h.p99(), 9900, 9900 * 0.03);
  EXPECT_DOUBLE_EQ(h.max(), 10000);
  EXPECT_NEAR(h.mean(), 5000.5, 1e-6);
}

TEST(LogHistogramTest, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogramTest, MergePreservesQuantiles) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 1; i <= 1000; ++i) (i % 2 ? a : b).Add(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_NEAR(a.p50(), 500, 25);
}

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SpscQueueTest, CapacityRoundsUp) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(SpscQueueTest, CrossThreadTransfer) {
  SpscQueue<uint64_t> q(64);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expect = 0;
  while (expect < kCount) {
    if (auto v = q.TryPop()) {
      ASSERT_EQ(*v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(q.Empty());
}

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.Append<uint32_t>(0xdeadbeef);
  w.Append<double>(3.25);
  w.Append<uint16_t>(7);
  const std::vector<std::byte> raw{std::byte{1}, std::byte{2}, std::byte{3}};
  w.AppendBytes(raw);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.Read<uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.Read<double>(), 3.25);
  EXPECT_EQ(r.Read<uint16_t>(), 7);
  const auto bytes = r.ReadBytes(3);
  EXPECT_EQ(bytes[2], std::byte{3});
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StoreLoadPod) {
  std::vector<std::byte> buf(16);
  StorePod(buf, 4, uint64_t{0x1122334455667788ULL});
  EXPECT_EQ(LoadPod<uint64_t>(buf, 4), 0x1122334455667788ULL);
}

}  // namespace
}  // namespace catfish

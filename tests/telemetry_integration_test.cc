// End-to-end telemetry: a live client/server pair over the emulated
// fabric with tracers attached, asserting that one search produces a
// complete span tree whose attributes agree with ClientStats, that the
// server-side trace joins the client trace by req_id, and that the
// global metric counters move in lockstep with the object-level stats.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "test_util.h"

namespace catfish {
namespace {

using testutil::RandomRect;

class TelemetryIntegrationTest : public ::testing::Test {
 protected:
  static constexpr size_t kDatasetSize = 2000;

  void SetUp() override {
    fabric_ = std::make_unique<rdma::Fabric>(
        rdma::FabricProfile::InfiniBand100G());
    server_node_ = fabric_->CreateNode("server");

    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 13);
    Xoshiro256 rng(7);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < kDatasetSize; ++i) {
      items.push_back({RandomRect(rng, 0.02), i});
    }
    tree_ = std::make_unique<rtree::RStarTree>(rtree::BulkLoad(*arena_, items));

    ServerConfig scfg;
    scfg.tracer = &server_tracer_;
    server_ = std::make_unique<RTreeServer>(server_node_, *tree_, scfg);
    // Heartbeats advertise an idle server, so the adaptive controller
    // deterministically stays on fast messaging (predicted utilization
    // never crosses the busy threshold, §IV-A).
    server_->OverrideUtilization(0.0);
  }

  std::unique_ptr<RTreeClient> MakeClient(ClientConfig cfg = {}) {
    cfg.tracer = &client_tracer_;
    auto node = fabric_->CreateNode("client");
    return std::make_unique<RTreeClient>(node, *server_, cfg);
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::shared_ptr<rdma::SimNode> server_node_;
  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<RTreeServer> server_;
  telemetry::Tracer client_tracer_;
  telemetry::Tracer server_tracer_;
};

TEST_F(TelemetryIntegrationTest, AdaptiveSearchYieldsCompleteSpanTree) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  auto client = MakeClient();
  Xoshiro256 rng(1);
  const auto rect = RandomRect(rng, 0.05);
  const auto results = client->Search(rect);

  // No heartbeat has arrived, so the adaptive decision is fast messaging.
  EXPECT_EQ(client->last_mode(), AccessMode::kFastMessaging);
  EXPECT_EQ(client->stats().fast_searches, 1u);

  auto trace = client_tracer_.Latest("search");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->Complete());

  // The decision span and the fast path's spans all hang off one root.
  const telemetry::Span* decide = trace->Find("decide");
  ASSERT_NE(decide, nullptr);
  EXPECT_EQ(decide->AttrOr("mode"), 0);  // 0 = fast messaging
  EXPECT_EQ(decide->AttrOr("r_busy"), 0);
  ASSERT_NE(trace->Find("ring_write"), nullptr);
  const telemetry::Span* collect = trace->Find("collect_response");
  ASSERT_NE(collect, nullptr);
  EXPECT_GE(collect->AttrOr("segments"), 1);
  EXPECT_EQ(collect->AttrOr("results"),
            static_cast<int64_t>(results.size()));

  const telemetry::Span& root = trace->span(trace->root());
  EXPECT_EQ(root.AttrOr("mode"), 0);
  EXPECT_EQ(root.AttrOr("results"), static_cast<int64_t>(results.size()));
  // decide, ring_write, collect — plus the server's span tree: a locally
  // sampled fast search self-stamps a wire context, so the server ships
  // its tree back and the client grafts it under the root.
  EXPECT_EQ(root.children.size(), 4u);
  const telemetry::Span* remote = trace->Find("server.request");
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->AttrOr("shard", -1), 0);  // single-node server
  EXPECT_NE(trace->Find("traverse"), nullptr);  // server stage, grafted
}

TEST_F(TelemetryIntegrationTest, ServerTraceJoinsClientTraceByReqId) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  auto client = MakeClient();
  Xoshiro256 rng(2);
  (void)client->Search(RandomRect(rng, 0.05));

  auto client_trace = client_tracer_.Latest("search");
  ASSERT_NE(client_trace, nullptr);
  const int64_t req_id =
      client_trace->span(client_trace->root()).AttrOr("req_id", -1);
  ASSERT_GE(req_id, 0);

  // The worker thread finishes its trace before the response reaches the
  // client ring, so by the time Search() returned it must be retained.
  auto server_trace = server_tracer_.Latest("server.request");
  ASSERT_NE(server_trace, nullptr);
  EXPECT_TRUE(server_trace->Complete());
  EXPECT_EQ(server_trace->span(server_trace->root()).AttrOr("req_id", -1),
            req_id);
  EXPECT_NE(server_trace->Find("traverse"), nullptr);
  EXPECT_NE(server_trace->Find("respond"), nullptr);
}

TEST_F(TelemetryIntegrationTest, OffloadTraceCountsMatchClientStats) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  auto client = MakeClient();
  Xoshiro256 rng(3);

  const ClientStats before = client->stats();
  const auto results = client->SearchOffloaded(RandomRect(rng, 0.05));
  const ClientStats after = client->stats();
  ASSERT_GT(after.rdma_reads, before.rdma_reads);

  auto trace = client_tracer_.Latest("search.offload");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->Complete());

  const telemetry::Span& root = trace->span(trace->root());
  EXPECT_EQ(root.AttrOr("rdma_reads"),
            static_cast<int64_t>(after.rdma_reads - before.rdma_reads));
  EXPECT_EQ(root.AttrOr("version_retries"),
            static_cast<int64_t>(after.version_retries -
                                 before.version_retries));
  EXPECT_EQ(root.AttrOr("results"), static_cast<int64_t>(results.size()));

  // One offload_round span per tree level, and their per-round read
  // counts must sum to the root's total.
  const size_t rounds = trace->CountSpans("offload_round");
  EXPECT_EQ(rounds, client->tree_height());
  int64_t read_sum = 0;
  for (size_t i = 0; i < trace->span_count(); ++i) {
    const auto& s = trace->span(static_cast<telemetry::SpanId>(i));
    if (s.name == "offload_round") read_sum += s.AttrOr("reads");
  }
  EXPECT_EQ(read_sum, root.AttrOr("rdma_reads"));
}

TEST_F(TelemetryIntegrationTest, GlobalCountersTrackClientStats) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  telemetry::Registry::Global().Reset();
  auto client = MakeClient();
  Xoshiro256 rng(4);
  constexpr int kFast = 5;
  constexpr int kOffload = 3;
  for (int i = 0; i < kFast; ++i) {
    (void)client->SearchFast(RandomRect(rng, 0.03));
  }
  for (int i = 0; i < kOffload; ++i) {
    (void)client->SearchOffloaded(RandomRect(rng, 0.03));
  }
  ASSERT_TRUE(client->Insert(RandomRect(rng, 0.01), 999'999));

  const ClientStats st = client->stats();
  EXPECT_EQ(st.fast_searches, static_cast<uint64_t>(kFast));
  EXPECT_EQ(st.offloaded_searches, static_cast<uint64_t>(kOffload));

  const auto snap = telemetry::Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counter("catfish.client.search.fast"), st.fast_searches);
  EXPECT_EQ(snap.counter("catfish.client.search.offload"),
            st.offloaded_searches);
  EXPECT_EQ(snap.counter("catfish.client.insert"), st.inserts);
  EXPECT_EQ(snap.counter("catfish.client.version_retries"),
            st.version_retries);
  // Offloading posts one READ per fetched chunk; the rdmasim layer must
  // agree with the client's own count.
  EXPECT_EQ(snap.counter("rdma.read.posted"), st.rdma_reads);
  const auto* fast_us = snap.timer("catfish.client.search_fast_us");
  ASSERT_NE(fast_us, nullptr);
  EXPECT_EQ(fast_us->count(), st.fast_searches);
  const auto* off_us = snap.timer("catfish.client.search_offload_us");
  ASSERT_NE(off_us, nullptr);
  EXPECT_EQ(off_us->count(), st.offloaded_searches);
}

TEST_F(TelemetryIntegrationTest, SampledTracerKeepsOneInN) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  telemetry::TracerConfig tcfg;
  tcfg.sample_every = 2;
  telemetry::Tracer sampled(tcfg);
  ClientConfig cfg;
  auto client = MakeClient(cfg);
  // Swap in the sampling tracer via a second client.
  ClientConfig cfg2;
  cfg2.tracer = &sampled;
  auto node = fabric_->CreateNode("client2");
  RTreeClient client2(node, *server_, cfg2);
  Xoshiro256 rng(5);
  for (int i = 0; i < 8; ++i) {
    (void)client2.SearchFast(RandomRect(rng, 0.03));
  }
  EXPECT_EQ(sampled.started(), 8u);
  EXPECT_EQ(sampled.sampled(), 4u);
  EXPECT_EQ(sampled.finished(), 4u);
}

}  // namespace
}  // namespace catfish

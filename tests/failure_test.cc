// Failure injection: connection teardown, stalled/closed peers, ring
// exhaustion, garbage payloads — the paths a production deployment hits
// when clients crash or networks partition.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "catfish/client.h"
#include "common/bytes.h"
#include "catfish/server.h"
#include "msg/ring.h"
#include "rtree/bulk_load.h"
#include "tcpkit/tcp_rtree.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;

struct Rig {
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  rtree::NodeArena arena{rtree::kChunkSize, 1 << 12};
  std::unique_ptr<rtree::RStarTree> tree;
  std::shared_ptr<rdma::SimNode> server_node = fabric.CreateNode("server");
  std::unique_ptr<RTreeServer> server;

  explicit Rig(ServerConfig scfg = {}) {
    Xoshiro256 rng(3);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 500; ++i) {
      items.push_back({RandomRect(rng, 0.01), i});
    }
    tree = std::make_unique<rtree::RStarTree>(rtree::BulkLoad(arena, items));
    server = std::make_unique<RTreeServer>(server_node, *tree, scfg);
  }
};

TEST(FailureTest, ServerStopsWithIdleConnections) {
  Rig rig;
  auto client = std::make_unique<RTreeClient>(
      rig.fabric.CreateNode("client"), *rig.server);
  client->SearchFast(geo::Rect{0.1, 0.1, 0.2, 0.2});
  // Stop with the connection still open: must join cleanly, not hang.
  rig.server->Stop();
  // The client's subsequent offloaded reads still work: one-sided READs
  // do not need server threads at all.
  const auto results = client->SearchOffloaded(geo::Rect{0.1, 0.1, 0.2, 0.2});
  std::vector<rtree::Entry> direct;
  rig.tree->Search(geo::Rect{0.1, 0.1, 0.2, 0.2}, direct);
  EXPECT_EQ(results.size(), direct.size());
}

TEST(FailureTest, FastPathTimesOutAfterServerStop) {
  Rig rig;
  ClientConfig cfg;
  cfg.request_timeout_us = 50'000;  // fail fast for the test
  auto client = std::make_unique<RTreeClient>(
      rig.fabric.CreateNode("client"), *rig.server, cfg);
  rig.server->Stop();
  // No worker is left to answer: the request must time out, not hang.
  EXPECT_THROW(client->SearchFast(geo::Rect{0.1, 0.1, 0.2, 0.2}),
               std::runtime_error);
}

TEST(FailureTest, FastPathTimeoutIsTypedAndCounted) {
  Rig rig;
  ClientConfig cfg;
  cfg.request_timeout_us = 50'000;
  auto client = std::make_unique<RTreeClient>(
      rig.fabric.CreateNode("client"), *rig.server, cfg);
  rig.server->Stop();
  try {
    client->SearchFast(geo::Rect{0.1, 0.1, 0.2, 0.2});
    FAIL() << "expected a timeout";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kTimedOut);
  }
  EXPECT_EQ(client->stats().timeouts, 1u);
}

TEST(FailureTest, WatchdogEscalatesAndFastPathFailsFast) {
  // Tight heartbeat interval so missed-interval arithmetic resolves in
  // milliseconds, not the 10ms production default.
  ServerConfig scfg;
  scfg.heartbeat_interval_us = 1'000;
  Rig rig(scfg);

  ClientConfig cfg;
  cfg.adaptive.heartbeat_interval_us = 1'000;
  cfg.watchdog.enabled = true;
  cfg.watchdog.suspect_after = 5;
  cfg.watchdog.disconnect_after = 15;
  auto client = std::make_unique<RTreeClient>(
      rig.fabric.CreateNode("client"), *rig.server, cfg);

  // Let at least one heartbeat land so the watchdog baseline is real.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->stats().heartbeats_received > 0;
  }));
  EXPECT_EQ(client->conn_state(), ConnState::kConnected);

  // Kill the server: heartbeats stop, the watchdog must walk
  // Connected → Suspect → Disconnected.
  rig.server->Stop();
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() == ConnState::kDisconnected;
  }));
  EXPECT_GE(client->stats().watchdog_trips, 1u);

  // Fast-path ops now fail fast with a typed status instead of burning
  // the (default 30s) request timeout.
  const auto before = std::chrono::steady_clock::now();
  try {
    client->SearchFast(geo::Rect{0.1, 0.1, 0.2, 0.2});
    FAIL() << "expected kDisconnected";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kDisconnected);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - before, 1s);

  // Degraded mode: offloaded reads keep serving from the last-known
  // arena — one-sided READs need no server CPU.
  const geo::Rect q{0.1, 0.1, 0.3, 0.3};
  const auto results = client->SearchOffloaded(q);
  std::vector<rtree::Entry> direct;
  rig.tree->Search(q, direct);
  EXPECT_EQ(results.size(), direct.size());
}

TEST(FailureTest, ClosedQpFailsOffloadReads) {
  Rig rig;
  auto node = rig.fabric.CreateNode("client");
  RTreeClient client(node, *rig.server);
  client.SearchOffloaded(geo::Rect{0.2, 0.2, 0.3, 0.3});  // works

  // Simulate a dead connection under the client.
  // (destructor closes the QP; a second client keeps the server alive)
  RTreeClient other(rig.fabric.CreateNode("client2"), *rig.server);
  rig.server->Stop();
  EXPECT_NO_THROW(other.SearchOffloaded(geo::Rect{0.2, 0.2, 0.3, 0.3}));
}

TEST(FailureTest, RingSenderOnClosedQpFails) {
  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  auto a = fabric.CreateNode("a");
  auto b = fabric.CreateNode("b");
  auto a_qp = a->CreateQp(a->CreateCq(), a->CreateCq());
  auto b_qp = b->CreateQp(b->CreateCq(), b->CreateCq());
  rdma::QueuePair::Connect(a_qp, b_qp);
  std::vector<std::byte> ring_mem(1024);
  alignas(8) std::array<std::byte, 8> ack{};
  const auto ring_mr = b->RegisterMemory(ring_mem);
  msg::RingSender tx(a_qp, rdma::RemoteAddr{ring_mr.rkey, 0},
                     ring_mem.size(), ack);

  std::vector<std::byte> payload(32, std::byte{1});
  ASSERT_TRUE(tx.TrySend(1, msg::kFlagEnd, payload));
  b_qp->Close();
  EXPECT_FALSE(tx.TrySend(1, msg::kFlagEnd, payload));
}

TEST(FailureTest, ReceiverIgnoresPaddingGarbageAfterZeroing) {
  // A receiver must never mis-parse residue: after consuming a message
  // the region is zeroed, so a partially-arrived next message (size word
  // present, commit byte missing) is simply "not ready".
  rdma::Fabric fabric(rdma::FabricProfile::Instant());
  auto a = fabric.CreateNode("a");
  auto b = fabric.CreateNode("b");
  auto a_qp = a->CreateQp(a->CreateCq(), a->CreateCq());
  auto b_qp = b->CreateQp(b->CreateCq(), b->CreateCq());
  rdma::QueuePair::Connect(a_qp, b_qp);
  std::vector<std::byte> ring_mem(1024);
  alignas(8) std::array<std::byte, 8> ack{};
  const auto ring_mr = b->RegisterMemory(ring_mem);
  const auto ack_mr = a->RegisterMemory(ack);
  msg::RingSender tx(a_qp, rdma::RemoteAddr{ring_mr.rkey, 0},
                     ring_mem.size(), ack);
  msg::RingReceiver rx(ring_mem, b_qp, rdma::RemoteAddr{ack_mr.rkey, 0});

  // Forge a header without its commit byte (as if the WRITE is still in
  // flight): TryReceive must return nothing and leave state intact.
  std::byte header[4];
  StorePod(header, 0, uint32_t{32});
  a_qp->PostWrite(1, header, rdma::RemoteAddr{ring_mr.rkey, 0});
  EXPECT_FALSE(rx.TryReceive().has_value());

  // Completing the message (full wire image) makes it deliverable.
  std::vector<std::byte> payload(10, std::byte{0xAB});
  const size_t wire = msg::WireSize(payload.size());
  std::vector<std::byte> frame(wire);
  StorePod(frame, 0, static_cast<uint32_t>(wire));
  StorePod(frame, 4, static_cast<uint32_t>(payload.size()));
  StorePod(frame, 8, uint16_t{7});
  StorePod(frame, 10, uint16_t{msg::kFlagEnd});
  std::memcpy(frame.data() + msg::kMsgHeaderBytes, payload.data(),
              payload.size());
  frame[wire - 1] = std::byte{msg::kCommitByte};
  a_qp->PostWrite(2, frame, rdma::RemoteAddr{ring_mr.rkey, 0});
  const auto m = rx.TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 7);
  EXPECT_EQ(m->payload, payload);
}

TEST(FailureTest, TcpServerSurvivesAbruptClientClose) {
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 12);
  Xoshiro256 rng(5);
  std::vector<rtree::Entry> items;
  for (uint64_t i = 0; i < 200; ++i) {
    items.push_back({RandomRect(rng, 0.01), i});
  }
  rtree::RStarTree tree = rtree::BulkLoad(arena, items);
  tcpkit::TcpRTreeServer server(tree);
  {
    tcpkit::TcpRTreeClient doomed(server);
    doomed.Search(geo::Rect{0, 0, 1, 1});
  }  // destructor: the stream closes abruptly

  // The server keeps serving other clients.
  tcpkit::TcpRTreeClient survivor(server);
  EXPECT_EQ(survivor.Search(geo::Rect{0, 0, 1, 1}).size(), 200u);
  server.Stop();
}

TEST(FailureTest, ArenaExhaustionSurfacesDuringInsert) {
  // A deliberately tiny arena: inserts must throw bad_alloc (registered
  // memory cannot grow, §III-B), never corrupt the tree.
  rtree::NodeArena arena(rtree::kChunkSize, 8);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  Xoshiro256 rng(7);
  uint64_t inserted = 0;
  try {
    for (uint64_t i = 0; i < 10'000; ++i) {
      tree.Insert(RandomRect(rng, 0.01), i);
      ++inserted;
    }
    FAIL() << "expected arena exhaustion";
  } catch (const std::bad_alloc&) {
    EXPECT_GT(inserted, 20u);  // filled several nodes first
  }
}

}  // namespace
}  // namespace catfish

// Unit tests for the telemetry subsystem: the sharded metrics registry
// (counters/gauges/timers, snapshot merging, reset), the trace span
// trees with sampling and bounded retention, and the JSON/table
// exporters (validated with a small hand-rolled JSON checker).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "json_util.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace catfish::telemetry {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator — enough to assert the
// exporters emit well-formed documents without a JSON library.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, CounterAccumulates) {
  Registry reg;
  Counter* c = reg.counter("test.counter");
  c->Increment();
  c->Add(41);
  const Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("test.counter"), 42u);
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
}

TEST(RegistryTest, SameNameSameHandle) {
  Registry reg;
  EXPECT_EQ(reg.counter("x"), reg.counter("x"));
  EXPECT_NE(reg.counter("x"), reg.counter("y"));
  EXPECT_EQ(reg.timer("t"), reg.timer("t"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
}

TEST(RegistryTest, GaugeLastWriteWins) {
  Registry reg;
  Gauge* g = reg.gauge("util");
  g->Set(0.25);
  g->Set(0.75);
  EXPECT_DOUBLE_EQ(reg.TakeSnapshot().gauge("util"), 0.75);
}

TEST(RegistryTest, TimerRecordsDistribution) {
  Registry reg;
  Timer* t = reg.timer("lat_us");
  for (int i = 1; i <= 100; ++i) t->RecordUs(static_cast<double>(i));
  const Snapshot snap = reg.TakeSnapshot();
  const LogHistogram* h = snap.timer("lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 100u);
  EXPECT_GT(h->p99(), h->p50());
  EXPECT_EQ(snap.timer("nope"), nullptr);
}

TEST(RegistryTest, SnapshotIsNameSorted) {
  Registry reg;
  reg.counter("zz")->Increment();
  reg.counter("aa")->Increment();
  reg.counter("mm")->Increment();
  const Snapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "aa");
  EXPECT_EQ(snap.counters[1].first, "mm");
  EXPECT_EQ(snap.counters[2].first, "zz");
}

TEST(RegistryTest, ResetZeroesEverything) {
  Registry reg;
  reg.counter("c")->Add(7);
  reg.gauge("g")->Set(3.0);
  reg.timer("t")->RecordUs(5.0);
  reg.Reset();
  const Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 0.0);
  const LogHistogram* h = snap.timer("t");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 0u);
}

TEST(RegistryTest, ConcurrentCountersMergeExactly) {
  // Each thread owns a private shard, so concurrent increments must
  // merge to the exact total — no lost updates, no double counting.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  Counter* c = reg.counter("shared");
  Timer* t = reg.timer("shared_us");
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (uint64_t n = 0; n < kPerThread; ++n) {
        c->Increment();
        if (n % 1000 == 0) t->RecordUs(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("shared"), kThreads * kPerThread);
  EXPECT_EQ(snap.timer("shared_us")->count(), kThreads * (kPerThread / 1000));
}

TEST(RegistryTest, MacrosReportToGlobal) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  Registry::Global().Reset();
  CATFISH_COUNT("macro.test.count");
  CATFISH_COUNT_ADD("macro.test.count", 4);
  CATFISH_TIMER_RECORD_US("macro.test.us", 12.5);
  {
    CATFISH_SCOPED_TIMER_US("macro.test.scoped_us");
  }
  const Snapshot snap = Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counter("macro.test.count"), 5u);
  EXPECT_EQ(snap.timer("macro.test.us")->count(), 1u);
  EXPECT_EQ(snap.timer("macro.test.scoped_us")->count(), 1u);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

uint64_t FakeClock() {
  static uint64_t t = 0;
  return t += 10;
}

TEST(TraceTest, SpanTreeStructure) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  Tracer tracer({}, &FakeClock);
  auto trace = tracer.StartTrace("search");
  ASSERT_NE(trace, nullptr);
  const SpanId decide = trace->StartSpan(trace->root(), "decide",
                                         tracer.now_us());
  trace->SetAttr(decide, "mode", 1);
  trace->EndSpan(decide, tracer.now_us());
  const SpanId write = trace->StartSpan(trace->root(), "ring_write",
                                        tracer.now_us());
  trace->EndSpan(write, tracer.now_us());
  tracer.Finish(trace);

  EXPECT_TRUE(trace->Complete());
  EXPECT_EQ(trace->span_count(), 3u);
  EXPECT_EQ(trace->span(trace->root()).children.size(), 2u);
  const Span* d = trace->Find("decide");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->AttrOr("mode"), 1);
  EXPECT_EQ(d->AttrOr("missing", -1), -1);
  EXPECT_GE(d->end_us, d->start_us);
  EXPECT_EQ(trace->CountSpans("ring_write"), 1u);
}

TEST(TraceTest, IncAttrAccumulates) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  Tracer tracer({}, &FakeClock);
  auto trace = tracer.StartTrace("t");
  ASSERT_NE(trace, nullptr);
  trace->IncAttr(trace->root(), "reads", 3);
  trace->IncAttr(trace->root(), "reads", 2);
  EXPECT_EQ(trace->span(trace->root()).AttrOr("reads"), 5);
}

TEST(TraceTest, SamplingKeepsOneInN) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  TracerConfig cfg;
  cfg.sample_every = 4;
  Tracer tracer(cfg, &FakeClock);
  int kept = 0;
  for (int i = 0; i < 16; ++i) {
    if (auto t = tracer.StartTrace("s")) {
      tracer.Finish(t);
      ++kept;
    }
  }
  EXPECT_EQ(kept, 4);
  EXPECT_EQ(tracer.started(), 16u);
  EXPECT_EQ(tracer.sampled(), 4u);
}

TEST(TraceTest, RetentionRingEvictsOldest) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  TracerConfig cfg;
  cfg.retain = 3;
  Tracer tracer(cfg, &FakeClock);
  for (int i = 0; i < 5; ++i) {
    auto t = tracer.StartTrace("s");
    ASSERT_NE(t, nullptr);
    t->SetAttr(t->root(), "seq", i);
    tracer.Finish(t);
  }
  const auto finished = tracer.Finished();
  ASSERT_EQ(finished.size(), 3u);
  EXPECT_EQ(finished.front()->span(0).AttrOr("seq"), 2);
  EXPECT_EQ(finished.back()->span(0).AttrOr("seq"), 4);
  EXPECT_EQ(tracer.evicted(), 2u);

  auto latest = tracer.Latest("s");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->span(0).AttrOr("seq"), 4);
  EXPECT_EQ(tracer.Latest("other"), nullptr);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportTest, JsonWriterBasics) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").Value("a\"b\\c\nd");
  w.Key("i").Value(int64_t{-3});
  w.Key("u").Value(uint64_t{18446744073709551615ull});
  w.Key("d").Value(1.5);
  w.Key("b").Value(true);
  w.Key("arr");
  w.BeginArray();
  w.Value(1);
  w.Value(2);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_TRUE(JsonChecker(w.str()).Valid()) << w.str();
  EXPECT_NE(w.str().find("\\\""), std::string::npos);
  EXPECT_NE(w.str().find("18446744073709551615"), std::string::npos);
}

TEST(ExportTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginObject();
  w.Key("nan").Value(std::nan(""));
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"nan":null})");
}

TEST(ExportTest, RawSplicesDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(1);
  w.Key("m").Raw(R"({"x":2})");
  w.Key("b").Value(3);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"m":{"x":2},"b":3})");
  EXPECT_TRUE(JsonChecker(w.str()).Valid());
}

TEST(ExportTest, SnapshotToJsonIsValid) {
  Registry reg;
  reg.counter("rdma.read.posted")->Add(12);
  reg.gauge("catfish.server.utilization_pct")->Set(42.0);
  for (int i = 0; i < 10; ++i) {
    reg.timer("catfish.client.search_fast_us")->RecordUs(i * 1.5);
  }
  const std::string json = SnapshotToJson(reg.TakeSnapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"rdma.read.posted\":12"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ExportTest, SnapshotToTableListsEveryMetric) {
  Registry reg;
  reg.counter("a.count")->Add(3);
  reg.gauge("b.gauge")->Set(0.5);
  reg.timer("c.timer_us")->RecordUs(7.0);
  const std::string table = SnapshotToTable(reg.TakeSnapshot());
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("b.gauge"), std::string::npos);
  EXPECT_NE(table.find("c.timer_us"), std::string::npos);
}

TEST(ExportTest, TraceToJsonIsValid) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#endif
  Tracer tracer({}, &FakeClock);
  auto trace = tracer.StartTrace("search");
  ASSERT_NE(trace, nullptr);
  const SpanId s = trace->StartSpan(trace->root(), "ring_write",
                                    tracer.now_us());
  trace->SetAttr(s, "req_id", 77);
  trace->EndSpan(s, tracer.now_us());
  tracer.Finish(trace);
  const std::string json = TraceToJson(*trace);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"req_id\":77"), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST(ExportTest, JsonLinesWriterAppendsLines) {
  const std::string path = ::testing::TempDir() + "/telemetry_test.jsonl";
  {
    JsonLinesWriter out(path);
    ASSERT_TRUE(out.ok());
    out.WriteLine(R"({"a":1})");
    out.WriteLine(R"({"b":2})");
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string content;
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(content, "{\"a\":1}\n{\"b\":2}\n");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Exporter edge cases (round-tripped through the tests' JSON parser)
// ---------------------------------------------------------------------------

TEST(ExportTest, ControlCharactersAreEscaped) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ctl").Value(std::string_view("a\x01b\x1f\t\r\n", 7));
  w.EndObject();
  // Raw control bytes must not survive into the document.
  for (char c : w.str()) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\0') << w.str();
  }
  const auto doc = testjson::Parse(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  const testjson::Value* ctl = doc->Find("ctl");
  ASSERT_NE(ctl, nullptr);
  EXPECT_EQ(ctl->string, std::string("a\x01b\x1f\t\r\n", 7));
}

TEST(ExportTest, InfinitiesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(-std::numeric_limits<double>::infinity());
  w.Value(1.0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1]");
}

TEST(ExportTest, RawInsideArrayKeepsCommas) {
  JsonWriter w;
  w.BeginArray();
  w.Value(1);
  w.Raw(R"({"x":2})");
  w.Raw("[3,4]");
  w.Value(5);
  w.EndArray();
  EXPECT_EQ(w.str(), R"([1,{"x":2},[3,4],5])");
  const auto doc = testjson::Parse(w.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->array.size(), 4u);
  EXPECT_EQ(doc->array[1].NumberOr("x"), 2.0);
  EXPECT_EQ(doc->array[2].array.size(), 2u);
}

TEST(ExportTest, SnapshotJsonRoundTripsExactValues) {
  Registry reg;
  reg.counter("ops.total")->Add(18446744073709551615ull);
  reg.gauge("util")->Set(0.4375);  // exactly representable
  for (int i = 1; i <= 8; ++i) reg.timer("lat_us")->RecordUs(i * 1.0);
  const auto doc = testjson::Parse(SnapshotToJson(reg.TakeSnapshot()));
  ASSERT_TRUE(doc.has_value());
  const testjson::Value* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  // A full-range u64 survives textually even though it exceeds a
  // double's integer range.
  const testjson::Value* total = counters->Find("ops.total");
  ASSERT_NE(total, nullptr);
  EXPECT_TRUE(total->is_number());
  EXPECT_DOUBLE_EQ(doc->Find("gauges")->NumberOr("util"), 0.4375);
  const testjson::Value* lat = doc->Find("timers")->Find("lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->NumberOr("count"), 8.0);
  EXPECT_DOUBLE_EQ(lat->NumberOr("mean"), 4.5);
  EXPECT_GE(lat->NumberOr("p99"), lat->NumberOr("p50"));
}

}  // namespace
}  // namespace catfish::telemetry

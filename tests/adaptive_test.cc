#include "catfish/adaptive.h"

#include <gtest/gtest.h>

#include <vector>

namespace catfish {
namespace {

constexpr uint64_t kInv = 10'000;  // 10 ms in µs

AdaptiveConfig DefaultCfg() {
  AdaptiveConfig cfg;
  cfg.heartbeat_interval_us = kInv;
  cfg.window = 8;
  cfg.busy_threshold = 0.95;
  return cfg;
}

TEST(AdaptiveTest, DefaultsToFastMessaging) {
  AdaptiveController c(DefaultCfg(), 1);
  for (uint64_t t = 0; t < 100; ++t) {
    EXPECT_EQ(c.NextMode(t * 100), AccessMode::kFastMessaging);
  }
}

TEST(AdaptiveTest, NoHeartbeatMeansNoSwitch) {
  // §IV-A: a missing heartbeat could mean saturated bandwidth — the
  // client must NOT offload (that would burn even more bandwidth).
  AdaptiveController c(DefaultCfg(), 2);
  EXPECT_EQ(c.NextMode(kInv * 10), AccessMode::kFastMessaging);
  EXPECT_EQ(c.r_busy(), 0u);
}

TEST(AdaptiveTest, BusyHeartbeatTriggersOffloadWindow) {
  AdaptiveConfig cfg = DefaultCfg();
  AdaptiveController c(cfg, 3);
  c.OnHeartbeat(0.99);
  uint64_t t = kInv + 1;

  // First decision after the busy heartbeat enters back-off round 1.
  const AccessMode first = c.NextMode(t);
  EXPECT_EQ(c.r_busy(), 1u);
  // r_off was drawn from [0, N); the first request offloads unless the
  // draw was 0.
  uint64_t offloaded = first == AccessMode::kRdmaOffloading ? 1 : 0;
  for (int i = 0; i < 20; ++i) {
    t += 10;
    if (c.NextMode(t) == AccessMode::kRdmaOffloading) ++offloaded;
  }
  EXPECT_LT(offloaded, cfg.window);  // bounded by the window
  // After the window drains, the client is back on fast messaging.
  EXPECT_EQ(c.NextMode(t + 10), AccessMode::kFastMessaging);
}

TEST(AdaptiveTest, WindowDrawIsWithinBounds) {
  // Over many seeds, round-1 draws must lie in [0, N) and round-2 draws
  // (after the first window drains) in [N, 2N).
  for (uint64_t seed = 0; seed < 50; ++seed) {
    AdaptiveController c(DefaultCfg(), seed);
    c.OnHeartbeat(0.99);
    uint64_t t = kInv + 1;
    c.NextMode(t);
    ASSERT_EQ(c.r_busy(), 1u);
    // r_off may have been decremented once already (if > 0 it offloaded).
    ASSERT_LE(c.r_off(), 7u);

    // Drain the remaining window; with no fresh heartbeat the state
    // only decrements.
    while (c.r_off() > 0) c.NextMode(++t);
    ASSERT_EQ(c.r_busy(), 1u);

    // The next busy heartbeat escalates to a draw in [N, 2N).
    c.OnHeartbeat(0.99);
    t += kInv + 1;
    c.NextMode(t);
    ASSERT_EQ(c.r_busy(), 2u);
    ASSERT_GE(c.r_off() + 1, 8u);   // +1 for the decrement just taken
    ASSERT_LT(c.r_off() + 1, 16u);
  }
}

TEST(AdaptiveTest, BackoffGrowsWithoutBound) {
  // BEB without a cap: each busy heartbeat found after a full drain
  // moves the window up by N (§IV-A: "the back-off continues without an
  // upper bound").
  AdaptiveController c(DefaultCfg(), 7);
  uint64_t t = 0;
  for (uint32_t round = 1; round <= 20; ++round) {
    t += kInv + 1;
    c.OnHeartbeat(0.99);
    c.NextMode(t);
    EXPECT_EQ(c.r_busy(), round);
    EXPECT_GE(c.r_off() + 1, static_cast<uint64_t>(round - 1) * 8);
    EXPECT_LT(c.r_off() + 1, static_cast<uint64_t>(round) * 8 + 1);
    while (c.r_off() > 0) c.NextMode(++t);  // drain before re-escalating
  }
}

TEST(AdaptiveTest, NoEscalationWhileWindowDrains) {
  // A busy heartbeat arriving mid-drain must not redraw the window —
  // escalation requires the client to have returned to fast messaging.
  AdaptiveConfig cfg = DefaultCfg();
  cfg.window = 1;  // deterministic draw: round k gives r_off = k-1
  AdaptiveController c(cfg, 23);
  uint64_t t = kInv + 1;
  c.OnHeartbeat(0.99);
  c.NextMode(t);                       // round 1, r_off drawn 0 → drained
  ASSERT_EQ(c.r_busy(), 1u);
  c.OnHeartbeat(0.99);
  t += kInv + 1;
  c.NextMode(t);                       // round 2: r_off = 1, consumed → 0
  ASSERT_EQ(c.r_busy(), 2u);
  c.OnHeartbeat(0.99);
  t += kInv + 1;
  c.NextMode(t);                       // round 3: r_off = 2, consumed → 1
  ASSERT_EQ(c.r_busy(), 3u);
  const uint64_t mid_drain = c.r_off();
  ASSERT_GT(mid_drain, 0u);
  c.OnHeartbeat(0.99);
  t += kInv + 1;
  c.NextMode(t);                       // busy, but window not drained
  EXPECT_EQ(c.r_busy(), 3u);           // no escalation
  EXPECT_EQ(c.r_off(), mid_drain - 1); // just kept draining
}

TEST(AdaptiveTest, IdleHeartbeatResetsBackoff) {
  AdaptiveController c(DefaultCfg(), 11);
  uint64_t t = kInv + 1;
  c.OnHeartbeat(0.99);
  c.NextMode(t);
  EXPECT_EQ(c.r_busy(), 1u);

  // A below-threshold heartbeat resets the escalation counter.
  t += kInv + 1;
  c.OnHeartbeat(0.50);
  c.NextMode(t);
  EXPECT_EQ(c.r_busy(), 0u);
}

TEST(AdaptiveTest, HeartbeatConsumedOncePerInterval) {
  AdaptiveController c(DefaultCfg(), 13);
  c.OnHeartbeat(0.99);
  c.NextMode(kInv + 1);
  const uint64_t off_after_first = c.r_off();
  // Immediately after, the mailbox is cleared and Inv has not elapsed:
  // further requests must not escalate r_busy.
  c.NextMode(kInv + 2);
  c.NextMode(kInv + 3);
  EXPECT_EQ(c.r_busy(), 1u);
  EXPECT_LE(c.r_off(), off_after_first);
}

TEST(AdaptiveTest, ThresholdBoundaryIsExclusive) {
  AdaptiveController c(DefaultCfg(), 17);
  c.OnHeartbeat(0.95);  // equal to T: NOT busy (algorithm uses U > T)
  c.NextMode(kInv + 1);
  EXPECT_EQ(c.r_busy(), 0u);
  EXPECT_EQ(c.r_off(), 0u);
}

TEST(AdaptiveTest, ExtremeCaseAllRequestsOffloaded) {
  // Paper §IV-A: "in the extreme case, all R-tree searches of a client
  // are completed with RDMA offloading."
  AdaptiveConfig cfg = DefaultCfg();
  AdaptiveController c(cfg, 19);
  uint64_t t = 0;
  uint64_t fast = 0;
  uint64_t off = 0;
  uint64_t late_fast = 0;
  // Busy heartbeat every interval; requests every 100 µs.
  const int kSteps = 60000;
  for (int step = 0; step < kSteps; ++step) {
    t += 100;
    if (step % 100 == 0) c.OnHeartbeat(0.99);
    const bool offloaded = c.NextMode(t) == AccessMode::kRdmaOffloading;
    (offloaded ? off : fast) += 1;
    if (step >= kSteps / 2 && !offloaded) ++late_fast;
  }
  // The back-off escalates past the request rate: offloading dominates
  // overall, and in the second half fast messaging is nearly extinct.
  EXPECT_GT(off, fast * 4);
  EXPECT_LT(late_fast, static_cast<uint64_t>(kSteps) / 2 / 10);
  EXPECT_GE(c.r_busy(), 10u);
}

TEST(AdaptiveTest, EwmaPredictorSmoothsSpikes) {
  // §VI extension: a single 100% heartbeat between idle ones must not
  // trip the EWMA predictor, but a sustained busy period must.
  AdaptiveConfig cfg = DefaultCfg();
  cfg.predictor = UtilPredictor::kEwma;
  cfg.ewma_alpha = 0.4;
  AdaptiveController c(cfg, 29);
  uint64_t t = 0;

  // Warm the predictor with a calm baseline.
  for (int i = 0; i < 5; ++i) {
    t += kInv + 1;
    c.OnHeartbeat(0.2);
    c.NextMode(t);
  }
  EXPECT_LT(c.predicted_util(), 0.3);

  // One spike: prediction rises to 0.4·1.0 + 0.6·0.2 ≈ 0.52 < T.
  t += kInv + 1;
  c.OnHeartbeat(1.0);
  EXPECT_EQ(c.NextMode(t), AccessMode::kFastMessaging);
  EXPECT_EQ(c.r_busy(), 0u);

  // Sustained saturation crosses the threshold within a few beats.
  int beats = 0;
  while (c.r_busy() == 0 && beats < 20) {
    t += kInv + 1;
    c.OnHeartbeat(1.0);
    c.NextMode(t);
    ++beats;
  }
  EXPECT_GT(c.r_busy(), 0u);
  EXPECT_LE(beats, 10);
}

TEST(AdaptiveTest, MostRecentPredictorReactsImmediately) {
  AdaptiveController c(DefaultCfg(), 31);
  c.OnHeartbeat(1.0);
  c.NextMode(kInv + 1);
  EXPECT_EQ(c.r_busy(), 1u);  // one spike is enough without smoothing
}

TEST(AdaptiveTest, DifferentSeedsDesynchronize) {
  // The whole point of the randomized window: clients must not all
  // return to fast messaging at the same time.
  std::vector<uint64_t> first_fast_after_busy;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    AdaptiveController c(DefaultCfg(), seed);
    c.OnHeartbeat(0.99);
    uint64_t t = kInv + 1;
    uint64_t n = 0;
    while (c.NextMode(t) == AccessMode::kRdmaOffloading && n < 100) {
      ++n;
      t += 1;
    }
    first_fast_after_busy.push_back(n);
  }
  // Not all identical.
  bool all_same = true;
  for (const uint64_t n : first_fast_after_busy) {
    all_same &= n == first_fast_after_busy[0];
  }
  EXPECT_FALSE(all_same);
}

}  // namespace
}  // namespace catfish

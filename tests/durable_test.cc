// Unit tests for the durability subsystem: WAL framing and torn-tail
// truncation, group commit, checkpoint codec, the bounded dedup table,
// and DurabilityManager's exactly-once write path across recoveries.
#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "durable/checkpoint.h"
#include "durable/dedup.h"
#include "durable/manager.h"
#include "durable/storage.h"
#include "durable/wal.h"
#include "rtree/node.h"
#include "test_util.h"

namespace catfish::durable {
namespace {

WalRecord MakeRecord(uint64_t req_id, WalOp op = WalOp::kInsert) {
  WalRecord rec;
  rec.op = op;
  rec.client_gen = 7;
  rec.req_id = req_id;
  rec.rect = geo::Rect{0.1, 0.2, 0.3, 0.4};
  rec.rect_id = 1000 + req_id;
  return rec;
}

std::vector<std::byte> EncodeRecords(uint64_t first_lsn, size_t count) {
  std::vector<std::byte> out;
  for (size_t i = 0; i < count; ++i) {
    WalRecord rec = MakeRecord(i + 1);
    rec.lsn = first_lsn + i;
    EncodeWalRecord(rec, out);
  }
  return out;
}

// ---------------------------------------------------------------- WAL codec

TEST(WalCodecTest, RecordRoundTrip) {
  WalRecord rec = MakeRecord(42, WalOp::kDelete);
  rec.lsn = 9;
  std::vector<std::byte> buf;
  EncodeWalRecord(rec, buf);
  EXPECT_EQ(buf.size(), kWalFrameBytes);

  const auto decoded = DecodeWalStream(buf);
  EXPECT_TRUE(decoded.clean);
  ASSERT_EQ(decoded.records.size(), 1u);
  const WalRecord& got = decoded.records[0];
  EXPECT_EQ(got.lsn, 9u);
  EXPECT_EQ(got.op, WalOp::kDelete);
  EXPECT_EQ(got.client_gen, 7u);
  EXPECT_EQ(got.req_id, 42u);
  EXPECT_EQ(got.rect, rec.rect);
  EXPECT_EQ(got.rect_id, rec.rect_id);
}

TEST(WalCodecTest, StreamDecodesEveryRecord) {
  const auto image = EncodeRecords(1, 10);
  const auto decoded = DecodeWalStream(image);
  EXPECT_TRUE(decoded.clean);
  EXPECT_EQ(decoded.records.size(), 10u);
  EXPECT_EQ(decoded.valid_bytes, image.size());
  EXPECT_EQ(decoded.truncated_bytes, 0u);
  for (size_t i = 0; i < decoded.records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].lsn, i + 1);
  }
}

TEST(WalCodecTest, TornTailTruncatedAtEveryCutPoint) {
  // A crash can cut the log anywhere inside the last frame; whatever the
  // cut, the decoder must keep exactly the complete records before it.
  const auto image = EncodeRecords(1, 3);
  for (size_t cut = 2 * kWalFrameBytes + 1; cut < 3 * kWalFrameBytes; ++cut) {
    std::vector<std::byte> torn(image.begin(), image.begin() + cut);
    const auto decoded = DecodeWalStream(torn);
    EXPECT_FALSE(decoded.clean);
    EXPECT_EQ(decoded.records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(decoded.valid_bytes, 2 * kWalFrameBytes);
    EXPECT_EQ(decoded.truncated_bytes, cut - 2 * kWalFrameBytes);
  }
}

TEST(WalCodecTest, CorruptCrcDropsRecordAndTail) {
  auto image = EncodeRecords(1, 3);
  // Flip one payload byte in the second record.
  image[kWalFrameBytes + kWalHeaderBytes + 5] ^= std::byte{0x10};
  const auto decoded = DecodeWalStream(image);
  EXPECT_FALSE(decoded.clean);
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.records[0].lsn, 1u);
  EXPECT_EQ(decoded.valid_bytes, kWalFrameBytes);
}

TEST(WalCodecTest, CorruptLengthFieldNeverOverreads) {
  auto image = EncodeRecords(1, 2);
  // Stamp a huge length into the second record's header: the decoder
  // must stop at the first record instead of reading past the buffer.
  const uint32_t huge = 0x7fffffffu;
  std::memcpy(image.data() + kWalFrameBytes + 4, &huge, sizeof(huge));
  const auto decoded = DecodeWalStream(image);
  EXPECT_FALSE(decoded.clean);
  EXPECT_EQ(decoded.records.size(), 1u);
}

TEST(WalCodecTest, NonContiguousLsnStopsPrefix) {
  std::vector<std::byte> image;
  for (uint64_t lsn : {1u, 2u, 4u}) {  // gap: 3 is missing
    WalRecord rec = MakeRecord(lsn);
    rec.lsn = lsn;
    EncodeWalRecord(rec, image);
  }
  const auto decoded = DecodeWalStream(image);
  EXPECT_FALSE(decoded.clean);
  EXPECT_EQ(decoded.records.size(), 2u);
}

TEST(WalCodecTest, FirstLsnMismatchRejectsWholeLog) {
  const auto image = EncodeRecords(5, 3);
  EXPECT_EQ(DecodeWalStream(image, 5).records.size(), 3u);
  EXPECT_EQ(DecodeWalStream(image, 6).records.size(), 0u);
}

// ----------------------------------------------------------------- Wal core

TEST(WalTest, CommitMakesEverythingUpToLsnDurable) {
  auto disk = std::make_shared<MemLogStorage>();
  Wal wal(disk.get());
  for (int i = 0; i < 3; ++i) wal.Append(MakeRecord(i + 1));
  EXPECT_EQ(wal.last_lsn(), 3u);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  EXPECT_EQ(disk->durable_size(), 0u);

  wal.Commit(3);
  EXPECT_EQ(wal.durable_lsn(), 3u);
  EXPECT_EQ(disk->durable_size(), 3 * kWalFrameBytes);
  const auto decoded = DecodeWalStream(disk->ReadAll());
  EXPECT_TRUE(decoded.clean);
  EXPECT_EQ(decoded.records.size(), 3u);
}

TEST(WalTest, ConcurrentCommittersGroupAndStayContiguous) {
  auto disk = std::make_shared<MemLogStorage>();
  Wal wal(disk.get());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t lsn = wal.Append(MakeRecord(1));
        wal.Commit(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wal.durable_lsn(), kThreads * kPerThread);
  const auto decoded = DecodeWalStream(disk->ReadAll());
  EXPECT_TRUE(decoded.clean);
  ASSERT_EQ(decoded.records.size(), size_t{kThreads * kPerThread});
  for (size_t i = 0; i < decoded.records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].lsn, i + 1);
  }
  // Group commit: every commit is covered by a sync but leaders batch,
  // so there can never be more syncs than commits.
  const WalStats stats = wal.stats();
  EXPECT_LE(stats.syncs, stats.commits);
  EXPECT_EQ(stats.appends, uint64_t{kThreads * kPerThread});
}

TEST(WalTest, TruncateThroughKeepsOnlyTheTail) {
  auto disk = std::make_shared<MemLogStorage>();
  Wal wal(disk.get());
  for (int i = 0; i < 10; ++i) wal.Append(MakeRecord(i + 1));
  wal.Commit(10);

  wal.TruncateThrough(6);
  EXPECT_EQ(wal.log_bytes(), 4 * kWalFrameBytes);
  const auto decoded = DecodeWalStream(disk->ReadAll());
  EXPECT_TRUE(decoded.clean);
  ASSERT_EQ(decoded.records.size(), 4u);
  EXPECT_EQ(decoded.records.front().lsn, 7u);
  EXPECT_EQ(wal.stats().truncations, 1u);

  // The sequence continues where it left off.
  EXPECT_EQ(wal.Append(MakeRecord(99)), 11u);
  wal.Commit(11);
  EXPECT_EQ(DecodeWalStream(disk->ReadAll()).records.back().lsn, 11u);
}

// ------------------------------------------------------------- dedup table

TEST(DedupTest, LookupMissThenHit) {
  DedupTable dedup(8);
  EXPECT_FALSE(dedup.Lookup(1, 1).has_value());
  dedup.Record(1, 1, /*ok=*/1, /*lsn=*/5);
  const auto hit = dedup.Lookup(1, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ok, 1);
  EXPECT_EQ(hit->lsn, 5u);
  // Other sessions are independent.
  EXPECT_FALSE(dedup.Lookup(2, 1).has_value());
}

TEST(DedupTest, EvictionHorizonKeepsOldResendsIdempotent) {
  DedupTable dedup(4);
  for (uint64_t req = 1; req <= 10; ++req) {
    dedup.Record(7, req, req % 2, /*lsn=*/req);
  }
  // Only the last 4 survive verbatim...
  const auto exact = dedup.Lookup(7, 9);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->lsn, 9u);
  // ...but an ancient resend is still a duplicate (synthetic ok ack),
  // never a fresh apply.
  const auto ancient = dedup.Lookup(7, 2);
  ASSERT_TRUE(ancient.has_value());
  EXPECT_EQ(ancient->ok, 1);
  EXPECT_EQ(ancient->lsn, 0u);
  // A genuinely new req_id is still a miss.
  EXPECT_FALSE(dedup.Lookup(7, 11).has_value());
}

// -------------------------------------------------------- checkpoint codec

TEST(CheckpointCodecTest, RoundTripRestoresTreeAndDedup) {
  rtree::NodeArena arena(rtree::kChunkSize, 256);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  Xoshiro256 rng(11);
  testutil::BruteForceIndex oracle;
  for (uint64_t id = 0; id < 80; ++id) {
    const geo::Rect r = testutil::RandomRect(rng, 0.05);
    tree.Insert(r, id);
    oracle.Insert(r, id);
  }
  DedupTable dedup(16);
  dedup.Record(3, 21, 1, 40);
  dedup.RestoreSession(9, 17);

  const CheckpointMeta meta{/*applied_lsn=*/41, tree.size(), tree.height(),
                            tree.write_epoch()};
  const auto blob = EncodeCheckpoint(arena, dedup, meta);
  const auto decoded = DecodeCheckpoint(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->meta.applied_lsn, 41u);
  EXPECT_EQ(decoded->meta.tree_size, 80u);
  EXPECT_EQ(decoded->chunk_size, rtree::kChunkSize);
  EXPECT_EQ(decoded->max_chunks, 256u);

  const auto hit = decoded->dedup.Lookup(3, 21);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->lsn, 40u);
  ASSERT_TRUE(decoded->dedup.Lookup(9, 17).has_value());  // horizon survives

  rtree::NodeArena arena2(decoded->chunk_size, decoded->max_chunks);
  arena2.Restore(decoded->arena_snapshot);
  rtree::RStarTree restored = rtree::RStarTree::Attach(arena2);
  restored.CheckInvariants();
  std::vector<rtree::Entry> out;
  restored.Search(geo::Rect{0, 0, 1, 1}, out);
  std::vector<uint64_t> ids;
  for (const auto& e : out) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, oracle.Search(geo::Rect{0, 0, 1, 1}));
}

TEST(CheckpointCodecTest, AnyCorruptionReadsAsNoCheckpoint) {
  rtree::NodeArena arena(rtree::kChunkSize, 8);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  tree.Insert(geo::Rect{0.1, 0.1, 0.2, 0.2}, 1);
  const auto blob = EncodeCheckpoint(arena, DedupTable(4), {1, 1, 1, 1});
  ASSERT_TRUE(DecodeCheckpoint(blob).has_value());

  // Bit flips throughout the blob (header, dedup section, arena image,
  // trailing CRC) must all be caught.
  Xoshiro256 rng(5);
  for (int i = 0; i < 64; ++i) {
    auto mutated = blob;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    EXPECT_FALSE(DecodeCheckpoint(mutated).has_value()) << "pos=" << pos;
  }
  // Truncations at any point must be caught too.
  for (int i = 0; i < 32; ++i) {
    auto short_blob = blob;
    short_blob.resize(rng.NextBounded(blob.size()));
    EXPECT_FALSE(DecodeCheckpoint(short_blob).has_value());
  }
}

// ------------------------------------------------------ DurabilityManager

class DurabilityManagerTest : public ::testing::Test {
 protected:
  static constexpr size_t kChunks = 512;

  void SetUp() override {
    wal_disk_ = std::make_shared<MemLogStorage>();
    ckpt_disk_ = std::make_shared<MemCheckpointStore>();
  }

  std::unique_ptr<DurabilityManager> NewManager(DurabilityConfig cfg = {}) {
    return std::make_unique<DurabilityManager>(wal_disk_, ckpt_disk_, cfg);
  }

  static std::vector<uint64_t> ScanIds(rtree::RStarTree& tree) {
    std::vector<rtree::Entry> out;
    tree.Search(geo::Rect{0, 0, 1, 1}, out);
    std::vector<uint64_t> ids;
    for (const auto& e : out) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::shared_ptr<MemLogStorage> wal_disk_;
  std::shared_ptr<MemCheckpointStore> ckpt_disk_;
};

TEST_F(DurabilityManagerTest, FreshRecoverYieldsEmptyTree) {
  auto mgr = NewManager();
  rtree::NodeArena arena(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree = mgr->Recover(arena);
  EXPECT_EQ(tree.size(), 0u);
  const RecoveryReport& report = mgr->recovery_report();
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(mgr->wal().last_lsn(), 0u);
}

TEST_F(DurabilityManagerTest, RecoverBeforeWriteIsEnforced) {
  auto mgr = NewManager();
  rtree::NodeArena arena(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  EXPECT_THROW(mgr->ExecuteInsert(tree, 1, 1, geo::Rect{0, 0, 1, 1}, 1),
               std::logic_error);
}

TEST_F(DurabilityManagerTest, DuplicateWritesAreNotReapplied) {
  auto mgr = NewManager();
  rtree::NodeArena arena(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree = mgr->Recover(arena);

  const geo::Rect r{0.2, 0.2, 0.3, 0.3};
  const auto first = mgr->ExecuteInsert(tree, /*gen=*/1, /*req=*/1, r, 50);
  EXPECT_TRUE(first.ok);
  EXPECT_FALSE(first.duplicate);
  EXPECT_EQ(tree.size(), 1u);

  // The resend is acked with the original outcome but never applied.
  const auto resend = mgr->ExecuteInsert(tree, 1, 1, r, 50);
  EXPECT_TRUE(resend.ok);
  EXPECT_TRUE(resend.duplicate);
  EXPECT_EQ(resend.lsn, first.lsn);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(mgr->wal().last_lsn(), 1u);  // no second record

  // Same for deletes, including the outcome of a failed delete.
  const auto miss = mgr->ExecuteDelete(tree, 1, 2, r, 999);
  EXPECT_FALSE(miss.ok);
  const auto miss_again = mgr->ExecuteDelete(tree, 1, 2, r, 999);
  EXPECT_FALSE(miss_again.ok);
  EXPECT_TRUE(miss_again.duplicate);
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(DurabilityManagerTest, RecoverReplaysEveryAckedWrite) {
  testutil::BruteForceIndex oracle;
  Xoshiro256 rng(23);
  uint64_t writes = 0;
  {
    auto mgr = NewManager();
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr->Recover(arena);
    for (uint64_t id = 0; id < 200; ++id) {
      const geo::Rect r = testutil::RandomRect(rng, 0.04);
      ASSERT_TRUE(mgr->ExecuteInsert(tree, 1, ++writes, r, id).ok);
      oracle.Insert(r, id);
      if (id % 5 == 4) {
        const uint64_t victim = rng.NextBounded(id);
        const geo::Rect vr = oracle.RectOf(victim);
        const auto res = mgr->ExecuteDelete(tree, 1, ++writes, vr, victim);
        EXPECT_EQ(res.ok, oracle.Delete(vr, victim));
      }
    }
  }  // server dies; only wal_disk_/ckpt_disk_ survive

  auto mgr2 = NewManager();
  rtree::NodeArena arena2(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree2 = mgr2->Recover(arena2);
  tree2.CheckInvariants();
  const RecoveryReport& report = mgr2->recovery_report();
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.records_replayed, writes);
  EXPECT_EQ(tree2.size(), oracle.size());
  EXPECT_EQ(ScanIds(tree2), oracle.Search(geo::Rect{0, 0, 1, 1}));

  // The dedup table was rebuilt from the log: a resend of the last write
  // against the new incarnation is recognized, not reapplied.
  const auto resend = mgr2->ExecuteInsert(tree2, 1, writes - 1,
                                          geo::Rect{0, 0, 1, 1}, 0);
  EXPECT_TRUE(resend.duplicate);
  EXPECT_EQ(tree2.size(), oracle.size());
}

TEST_F(DurabilityManagerTest, CheckpointTruncatesLogAndSeedsRecovery) {
  testutil::BruteForceIndex oracle;
  Xoshiro256 rng(31);
  uint64_t req = 0;
  {
    auto mgr = NewManager();
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr->Recover(arena);
    for (uint64_t id = 0; id < 120; ++id) {
      const geo::Rect r = testutil::RandomRect(rng, 0.04);
      mgr->ExecuteInsert(tree, 1, ++req, r, id);
      oracle.Insert(r, id);
    }
    EXPECT_EQ(mgr->Checkpoint(tree), 120u);
    EXPECT_EQ(mgr->wal().log_bytes(), 0u);
    EXPECT_EQ(ckpt_disk_->writes(), 1u);
    for (uint64_t id = 120; id < 150; ++id) {
      const geo::Rect r = testutil::RandomRect(rng, 0.04);
      mgr->ExecuteInsert(tree, 1, ++req, r, id);
      oracle.Insert(r, id);
    }
  }

  auto mgr2 = NewManager();
  rtree::NodeArena arena2(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree2 = mgr2->Recover(arena2);
  const RecoveryReport& report = mgr2->recovery_report();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.checkpoint_applied_lsn, 120u);
  EXPECT_EQ(report.records_replayed, 30u);
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_EQ(ScanIds(tree2), oracle.Search(geo::Rect{0, 0, 1, 1}));
  // New writes continue the LSN sequence past everything recovered.
  EXPECT_TRUE(mgr2->ExecuteInsert(tree2, 2, 1, geo::Rect{0, 0, 0.1, 0.1},
                                  999).ok);
  EXPECT_EQ(mgr2->wal().last_lsn(), 151u);
}

TEST_F(DurabilityManagerTest, CrashBetweenCheckpointAndTruncationIsSafe) {
  // A crash can land after the checkpoint blob is written but before the
  // WAL is truncated: recovery must skip the already-captured prefix
  // instead of replaying it twice.
  testutil::BruteForceIndex oracle;
  Xoshiro256 rng(37);
  {
    auto mgr = NewManager();
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr->Recover(arena);
    for (uint64_t id = 0; id < 60; ++id) {
      const geo::Rect r = testutil::RandomRect(rng, 0.04);
      mgr->ExecuteInsert(tree, 1, id + 1, r, id);
      oracle.Insert(r, id);
    }
    const auto pre_truncate_image = wal_disk_->ReadAll();
    mgr->Checkpoint(tree);
    // Undo the truncation: the disk now looks like the crash hit between
    // the two steps.
    wal_disk_->Reset(pre_truncate_image);
  }

  auto mgr2 = NewManager();
  rtree::NodeArena arena2(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree2 = mgr2->Recover(arena2);
  const RecoveryReport& report = mgr2->recovery_report();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.records_skipped, 60u);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(tree2.size(), 60u);
  EXPECT_EQ(ScanIds(tree2), oracle.Search(geo::Rect{0, 0, 1, 1}));
}

TEST_F(DurabilityManagerTest, TornLogTailIsTruncatedPhysically) {
  {
    auto mgr = NewManager();
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr->Recover(arena);
    for (uint64_t id = 0; id < 10; ++id) {
      mgr->ExecuteInsert(tree, 1, id + 1, geo::Rect{0.1, 0.1, 0.2, 0.2}, id);
    }
  }
  // A torn half-frame at the end of the log, as a crash mid-append
  // leaves it.
  std::vector<std::byte> torn(kWalFrameBytes / 2, std::byte{0xab});
  wal_disk_->Append(torn);
  wal_disk_->Sync();

  auto mgr2 = NewManager();
  rtree::NodeArena arena2(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree2 = mgr2->Recover(arena2);
  const RecoveryReport& report = mgr2->recovery_report();
  EXPECT_EQ(report.records_replayed, 10u);
  EXPECT_EQ(report.tail_bytes_truncated, torn.size());
  // The truncation is physical: a third recovery sees a clean log.
  EXPECT_EQ(wal_disk_->size(), 10 * kWalFrameBytes);
  EXPECT_TRUE(DecodeWalStream(wal_disk_->ReadAll()).clean);
  // And the next write continues the sequence cleanly.
  EXPECT_TRUE(mgr2->ExecuteInsert(tree2, 1, 11, geo::Rect{0, 0, 1, 1},
                                  99).ok);
  EXPECT_EQ(mgr2->wal().last_lsn(), 11u);
}

TEST_F(DurabilityManagerTest, DedupEvictionKeepsRetryWindowIdempotent) {
  DurabilityConfig cfg;
  cfg.dedup_window = 4;
  auto mgr = NewManager(cfg);
  rtree::NodeArena arena(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree = mgr->Recover(arena);

  for (uint64_t req = 1; req <= 12; ++req) {
    ASSERT_TRUE(mgr->ExecuteInsert(tree, 1, req,
                                   geo::Rect{0.1, 0.1, 0.2, 0.2}, req).ok);
  }
  ASSERT_EQ(tree.size(), 12u);
  // A resend from far outside the window hits the eviction horizon: it
  // is acked ok and — the invariant that matters — never reapplied.
  const auto ancient = mgr->ExecuteInsert(tree, 1, 2,
                                          geo::Rect{0.1, 0.1, 0.2, 0.2}, 2);
  EXPECT_TRUE(ancient.ok);
  EXPECT_TRUE(ancient.duplicate);
  EXPECT_EQ(tree.size(), 12u);
  // A resend inside the window gets the exact stored outcome.
  const auto recent = mgr->ExecuteInsert(tree, 1, 11,
                                         geo::Rect{0.1, 0.1, 0.2, 0.2}, 11);
  EXPECT_TRUE(recent.duplicate);
  EXPECT_EQ(recent.lsn, 11u);
  EXPECT_EQ(tree.size(), 12u);
}

TEST_F(DurabilityManagerTest, ShouldCheckpointTracksLogGrowth) {
  DurabilityConfig cfg;
  cfg.checkpoint_wal_bytes = 3 * kWalFrameBytes;
  auto mgr = NewManager(cfg);
  rtree::NodeArena arena(rtree::kChunkSize, kChunks);
  rtree::RStarTree tree = mgr->Recover(arena);

  mgr->ExecuteInsert(tree, 1, 1, geo::Rect{0.1, 0.1, 0.2, 0.2}, 1);
  mgr->ExecuteInsert(tree, 1, 2, geo::Rect{0.1, 0.1, 0.2, 0.2}, 2);
  EXPECT_FALSE(mgr->ShouldCheckpoint());
  mgr->ExecuteInsert(tree, 1, 3, geo::Rect{0.1, 0.1, 0.2, 0.2}, 3);
  EXPECT_TRUE(mgr->ShouldCheckpoint());
  mgr->Checkpoint(tree);
  EXPECT_FALSE(mgr->ShouldCheckpoint());
  EXPECT_EQ(mgr->checkpoints_written(), 1u);
}

TEST_F(DurabilityManagerTest, ArenaGeometryMismatchRefusesToRecover) {
  {
    auto mgr = NewManager();
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr->Recover(arena);
    mgr->ExecuteInsert(tree, 1, 1, geo::Rect{0.1, 0.1, 0.2, 0.2}, 1);
    mgr->Checkpoint(tree);
  }
  auto mgr2 = NewManager();
  rtree::NodeArena smaller(rtree::kChunkSize, kChunks / 2);
  EXPECT_THROW(mgr2->Recover(smaller), std::runtime_error);
}

}  // namespace
}  // namespace catfish::durable

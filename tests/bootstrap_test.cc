#include "catfish/bootstrap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/bytes.h"
#include "rtree/bulk_load.h"
#include "test_util.h"

namespace catfish {
namespace {

using testutil::RandomRect;

TEST(BootstrapCodecTest, ClientHelloRoundTrip) {
  WireClientHello hello;
  hello.node_name = "client-42";
  hello.qp_num = 7;
  hello.response_ring_rkey = 3;
  hello.response_ring_capacity = 256 * 1024;
  hello.request_ack_rkey = 4;
  const auto decoded = DecodeClientHello(Encode(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node_name, "client-42");
  EXPECT_EQ(decoded->qp_num, 7u);
  EXPECT_EQ(decoded->response_ring_rkey, 3u);
  EXPECT_EQ(decoded->response_ring_capacity, 256u * 1024u);
  EXPECT_EQ(decoded->request_ack_rkey, 4u);
}

TEST(BootstrapCodecTest, ServerHelloRoundTrip) {
  WireServerHello hello;
  hello.arena_rkey = 1;
  hello.arena_length = 1 << 20;
  hello.request_ring_rkey = 2;
  hello.request_ring_capacity = 4096;
  hello.response_ack_rkey = 5;
  hello.root = 1;
  hello.chunk_size = 1024;
  hello.tree_height = 3;
  hello.generation = 7;
  const auto decoded = DecodeServerHello(Encode(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->arena_length, 1u << 20);
  EXPECT_EQ(decoded->tree_height, 3u);
  EXPECT_EQ(decoded->generation, 7u);
}

TEST(BootstrapCodecTest, DecodersRejectJunk) {
  std::vector<std::byte> junk(10, std::byte{0xff});
  EXPECT_FALSE(DecodeClientHello(junk).has_value());
  EXPECT_FALSE(DecodeServerHello(junk).has_value());
  // Hello with absurd string length must not over-read.
  std::vector<std::byte> evil(8);
  StorePod(evil, 0, uint32_t{0xffffffff});
  EXPECT_FALSE(DecodeClientHello(evil).has_value());
}

TEST(BootstrapCodecTest, TruncatedHellosReturnNullopt) {
  // Every proper prefix of a valid hello must decode to nullopt — a
  // half-delivered frame can never wire a connection.
  WireClientHello ch;
  ch.node_name = "client-xyz";
  ch.qp_num = 9;
  const auto ch_bytes = Encode(ch);
  for (size_t n = 0; n < ch_bytes.size(); ++n) {
    EXPECT_FALSE(
        DecodeClientHello(std::span(ch_bytes.data(), n)).has_value())
        << "client hello prefix of " << n << " bytes decoded";
  }

  WireServerHello sh;
  sh.arena_length = 1 << 20;
  sh.generation = 2;
  const auto sh_bytes = Encode(sh);
  for (size_t n = 0; n < sh_bytes.size(); ++n) {
    EXPECT_FALSE(
        DecodeServerHello(std::span(sh_bytes.data(), n)).has_value())
        << "server hello prefix of " << n << " bytes decoded";
  }
}

class BootstrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 13);
    Xoshiro256 rng(3);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 1000; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      oracle_.Insert(r, i);
    }
    tree_ = std::make_unique<rtree::RStarTree>(rtree::BulkLoad(*arena_, items));
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    server_node_ = fabric_->CreateNode("server");
    server_ = std::make_unique<RTreeServer>(server_node_, *tree_);
    acceptor_ = std::make_unique<BootstrapAcceptor>(*server_, *fabric_);
  }

  void TearDown() override {
    acceptor_->Stop();
    server_->Stop();
  }

  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::shared_ptr<rdma::SimNode> server_node_;
  std::unique_ptr<RTreeServer> server_;
  std::unique_ptr<BootstrapAcceptor> acceptor_;
  testutil::BruteForceIndex oracle_;
};

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST_F(BootstrapTest, HandshakeOverTcpThenAllPathsWork) {
  auto node = fabric_->CreateNode("client-0");
  auto client = ConnectViaBootstrap(acceptor_->Dial(), node);
  ASSERT_EQ(acceptor_->handshakes(), 1u);
  EXPECT_EQ(server_->connection_count(), 1u);

  Xoshiro256 rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  }
  EXPECT_TRUE(client->Insert(geo::Rect{0.9, 0.9, 0.901, 0.901}, 777));
  EXPECT_TRUE(client->Delete(geo::Rect{0.9, 0.9, 0.901, 0.901}, 777));
}

TEST_F(BootstrapTest, ManyClientsHandshakeConcurrently) {
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto node = fabric_->CreateNode("client-" + std::to_string(i));
      auto client = ConnectViaBootstrap(acceptor_->Dial(), node);
      Xoshiro256 rng(static_cast<uint64_t>(i) + 10);
      for (int q = 0; q < 10; ++q) {
        const auto rect = RandomRect(rng, 0.03);
        if (Ids(client->Search(rect)) != oracle_.Search(rect)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(acceptor_->handshakes(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(server_->connection_count(), static_cast<size_t>(kClients));
}

TEST_F(BootstrapTest, UnknownNodeNameIsRejected) {
  // Craft a hello naming a node the fabric has never seen: the acceptor
  // must drop the handshake without wiring anything.
  auto stream = acceptor_->Dial();
  tcpkit::FramedConnection conn(stream);
  WireClientHello hello;
  hello.node_name = "ghost";
  hello.qp_num = 1;
  conn.SendFrame(kClientHelloFrame, 0, Encode(hello));
  EXPECT_FALSE(conn.RecvFrame(std::chrono::milliseconds(100)).has_value());
  EXPECT_EQ(server_->connection_count(), 0u);
}

TEST_F(BootstrapTest, GarbageFrameIsIgnored) {
  auto stream = acceptor_->Dial();
  tcpkit::FramedConnection conn(stream);
  std::vector<std::byte> junk(16, std::byte{0xab});
  conn.SendFrame(kClientHelloFrame, 0, junk);
  EXPECT_FALSE(conn.RecvFrame(std::chrono::milliseconds(100)).has_value());
  EXPECT_EQ(server_->connection_count(), 0u);
}

TEST_F(BootstrapTest, DialOverloadConnectsAndReportsGeneration) {
  auto node = fabric_->CreateNode("client-redial");
  auto client = ConnectViaBootstrap(
      [this] { return acceptor_->Dial(); }, node);
  EXPECT_EQ(client->server_generation(), server_node_->generation());
  Xoshiro256 rng(9);
  const auto q = RandomRect(rng, 0.05);
  EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
  // An explicit re-bootstrap against the same incarnation succeeds and
  // re-wires cleanly (same generation — no restart happened).
  EXPECT_EQ(client->Reconnect(), ClientStatus::kOk);
  EXPECT_EQ(acceptor_->handshakes(), 2u);
  EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
}

TEST_F(BootstrapTest, ScratchPoolSurvivesReconnectWithoutLeaks) {
  auto node = fabric_->CreateNode("client-scratch");
  auto client = ConnectViaBootstrap(
      [this] { return acceptor_->Dial(); }, node);
  Xoshiro256 rng(11);
  for (int i = 0; i < 4; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
    // Every offloaded traversal borrows fetch buffers from the engine's
    // pool and must return all of them before the search returns.
    remote::ScratchPool* pool = client->remote_engine().scratch();
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->in_use(), 0u);
  }

  // Reconnect rebuilds the engine and its pool against the (possibly
  // new) chunk geometry; nothing may leak across the swap and the fresh
  // pool must serve traversals immediately.
  ASSERT_EQ(client->Reconnect(), ClientStatus::kOk);
  remote::ScratchPool* fresh = client->remote_engine().scratch();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->in_use(), 0u);
  for (int i = 0; i < 4; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
    EXPECT_EQ(client->remote_engine().scratch()->in_use(), 0u);
  }
}

TEST_F(BootstrapTest, DialRacingStopDoesNotLeakOrHang) {
  // Threads hammer Dial() while the main thread Stops the acceptor: each
  // dial either completes a handshake or throws "dial after stop". Stop
  // must join every handshake thread (leaks show up under TSan/ASan).
  constexpr int kDialers = 6;
  std::atomic<int> dialed{0}, refused{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kDialers; ++i) {
    threads.emplace_back([&, i] {
      for (int n = 0; n < 20; ++n) {
        try {
          auto stream = acceptor_->Dial();
          ++dialed;
          // Abandon the stream without handshaking: the serve thread
          // must notice the close / stop flag and exit on its own.
        } catch (const std::runtime_error&) {
          ++refused;
          return;
        }
      }
    });
  }
  // Under load the dialer threads can take longer than any fixed sleep
  // to start; the race under test needs at least one dial to land
  // before Stop flips further ones to refusal.
  while (dialed.load() == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  acceptor_->Stop();
  for (auto& t : threads) t.join();
  EXPECT_GT(dialed.load(), 0);
  // Stop() already joined every handshake thread; a second Stop is a
  // no-op and further dials are refused.
  acceptor_->Stop();
  EXPECT_THROW(acceptor_->Dial(), std::runtime_error);
}

}  // namespace
}  // namespace catfish

#include "rtree/node.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace catfish::rtree {
namespace {

TEST(NodeCodecTest, FanoutMatchesChunk) {
  // 960 payload bytes, 8 header bytes, 40 bytes per entry → 23 entries.
  EXPECT_EQ(kMaxFanout, 23u);
  EXPECT_EQ(MaxFanout(2048), 47u);
}

TEST(NodeCodecTest, RoundTripFull) {
  Xoshiro256 rng(9);
  NodeData node;
  node.self = 42;
  node.level = 3;
  node.count = kMaxFanout;
  for (size_t i = 0; i < node.count; ++i) {
    node.entries[i].mbr = testutil::RandomRect(rng, 0.2);
    node.entries[i].id = rng.Next();
  }

  std::vector<std::byte> payload(PayloadCapacity(kChunkSize));
  const size_t used = EncodeNode(node, payload);
  EXPECT_EQ(used, kNodeHeaderBytes + node.count * kEntryBytes);

  NodeData out;
  ASSERT_TRUE(DecodeNode(payload, out));
  EXPECT_EQ(out.self, node.self);
  EXPECT_EQ(out.level, node.level);
  EXPECT_EQ(out.count, node.count);
  for (size_t i = 0; i < node.count; ++i) {
    EXPECT_EQ(out.entries[i].mbr, node.entries[i].mbr);
    EXPECT_EQ(out.entries[i].id, node.entries[i].id);
  }
}

TEST(NodeCodecTest, RoundTripEmpty) {
  NodeData node;
  node.self = 1;
  node.level = 0;
  node.count = 0;
  std::vector<std::byte> payload(PayloadCapacity(kChunkSize));
  EncodeNode(node, payload);
  NodeData out;
  ASSERT_TRUE(DecodeNode(payload, out));
  EXPECT_EQ(out.count, 0);
  EXPECT_TRUE(out.IsLeaf());
}

TEST(NodeCodecTest, DecodeRejectsBogusCount) {
  std::vector<std::byte> payload(PayloadCapacity(kChunkSize), std::byte{0xff});
  NodeData out;
  EXPECT_FALSE(DecodeNode(payload, out));
}

TEST(NodeCodecTest, DecodeRejectsShortBuffer) {
  std::vector<std::byte> payload(4);
  NodeData out;
  EXPECT_FALSE(DecodeNode(payload, out));
}

TEST(NodeCodecTest, ComputeMbr) {
  NodeData node;
  node.count = 2;
  node.entries[0].mbr = geo::Rect{0.0, 0.0, 0.5, 0.5};
  node.entries[1].mbr = geo::Rect{0.4, 0.4, 1.0, 0.8};
  EXPECT_EQ(node.ComputeMbr(), (geo::Rect{0.0, 0.0, 1.0, 0.8}));
}

TEST(MetaCodecTest, RoundTrip) {
  TreeMeta meta;
  meta.root = 1;
  meta.height = 4;
  meta.size = 123456789ULL;
  std::vector<std::byte> payload(PayloadCapacity(kChunkSize));
  EncodeMeta(meta, payload);
  TreeMeta out;
  ASSERT_TRUE(DecodeMeta(payload, out));
  EXPECT_EQ(out.root, 1u);
  EXPECT_EQ(out.height, 4u);
  EXPECT_EQ(out.size, 123456789ULL);
}

TEST(MetaCodecTest, RejectsBadMagic) {
  std::vector<std::byte> payload(PayloadCapacity(kChunkSize), std::byte{0});
  TreeMeta out;
  EXPECT_FALSE(DecodeMeta(payload, out));
}

}  // namespace
}  // namespace catfish::rtree

// Tests of the windowed metrics timeline: manual (DES-style) ticking,
// counter deltas and rates, gauge capture, windowed timer percentiles
// via LogHistogram::Diff, ring eviction, rebaselining, the JSONL
// exporter, and the wall-clock sampling thread.
#include "telemetry/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "json_util.h"
#include "telemetry/metrics.h"

namespace catfish::telemetry {
namespace {

constexpr uint64_t kSec = 1'000'000;

TEST(MetricsSamplerTest, FirstTickPrimesWithoutWindow) {
  Registry reg;
  reg.counter("c")->Add(10);
  MetricsSampler sampler(&reg);
  sampler.Tick(5 * kSec);
  EXPECT_EQ(sampler.window_count(), 0u);
  // The pre-prime counts must not leak into the first real window.
  sampler.Tick(6 * kSec);
  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].counter("c"), 0u);
}

TEST(MetricsSamplerTest, CounterDeltasAndRates) {
  Registry reg;
  MetricsSampler sampler(&reg);
  sampler.Tick(0);
  reg.counter("ops")->Add(500);
  sampler.Tick(1 * kSec);
  reg.counter("ops")->Add(300);
  sampler.Tick(3 * kSec);

  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].seq, 0u);
  EXPECT_EQ(windows[0].start_us, 0u);
  EXPECT_EQ(windows[0].end_us, kSec);
  EXPECT_EQ(windows[0].counter("ops"), 500u);
  EXPECT_DOUBLE_EQ(windows[0].rate("ops"), 500.0);
  // Second window spans 2 s: delta 300, rate 150/s.
  EXPECT_EQ(windows[1].counter("ops"), 300u);
  EXPECT_DOUBLE_EQ(windows[1].rate("ops"), 150.0);
  EXPECT_EQ(windows[1].counter("absent"), 0u);
}

TEST(MetricsSamplerTest, UnmovedCountersAreOmitted) {
  Registry reg;
  MetricsSampler sampler(&reg);
  reg.counter("idle")->Add(7);
  sampler.Tick(0);
  reg.counter("busy")->Increment();
  sampler.Tick(kSec);
  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].counters.size(), 1u);
  EXPECT_EQ(windows[0].counters[0].first, "busy");
  EXPECT_EQ(windows[0].counter("idle"), 0u);
}

TEST(MetricsSamplerTest, NonAdvancingTicksAreIgnored) {
  Registry reg;
  MetricsSampler sampler(&reg);
  sampler.Tick(100);
  sampler.Tick(100);  // zero-length: no window
  sampler.Tick(50);   // time went backwards: ignored
  EXPECT_EQ(sampler.window_count(), 0u);
  sampler.Tick(200);
  ASSERT_EQ(sampler.window_count(), 1u);
  EXPECT_EQ(sampler.Windows()[0].start_us, 100u);
}

TEST(MetricsSamplerTest, GaugeValueAtWindowClose) {
  Registry reg;
  MetricsSampler sampler(&reg);
  sampler.Tick(0);
  reg.gauge("util")->Set(0.3);
  reg.gauge("util")->Set(0.9);
  sampler.Tick(kSec);
  reg.gauge("util")->Set(0.1);
  sampler.Tick(2 * kSec);
  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].gauge("util"), 0.9);
  EXPECT_DOUBLE_EQ(windows[1].gauge("util"), 0.1);
  EXPECT_DOUBLE_EQ(windows[0].gauge("absent"), 0.0);
}

TEST(MetricsSamplerTest, WindowedTimerPercentiles) {
  Registry reg;
  MetricsSampler sampler(&reg);
  sampler.Tick(0);
  for (int i = 1; i <= 100; ++i) {
    reg.timer("lat_us")->RecordUs(static_cast<double>(i));
  }
  sampler.Tick(kSec);
  // A wildly different second window: the diff must isolate it from the
  // cumulative histogram.
  for (int i = 0; i < 10; ++i) reg.timer("lat_us")->RecordUs(1000.0);
  sampler.Tick(2 * kSec);

  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 2u);
  const LogHistogram* w0 = windows[0].timer("lat_us");
  const LogHistogram* w1 = windows[1].timer("lat_us");
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w0->count(), 100u);
  EXPECT_NEAR(w0->mean(), 50.5, 1e-9);
  EXPECT_EQ(w1->count(), 10u);
  EXPECT_NEAR(w1->mean(), 1000.0, 1e-9);
  // The second window's percentiles reflect only its own samples.
  EXPECT_GT(w1->p50(), w0->p99());
}

TEST(MetricsSamplerTest, QuietTimersAreOmitted) {
  Registry reg;
  MetricsSampler sampler(&reg);
  reg.timer("warm_us")->RecordUs(5.0);
  sampler.Tick(0);
  sampler.Tick(kSec);
  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].timers.empty());
  EXPECT_EQ(windows[0].timer("warm_us"), nullptr);
}

TEST(MetricsSamplerTest, RingEvictsOldestBeyondRetain) {
  Registry reg;
  SamplerConfig cfg;
  cfg.retain = 4;
  MetricsSampler sampler(&reg, cfg);
  for (uint64_t t = 0; t <= 10; ++t) sampler.Tick(t * kSec);
  EXPECT_EQ(sampler.window_count(), 4u);
  EXPECT_EQ(sampler.evicted(), 6u);
  const auto windows = sampler.Windows();
  EXPECT_EQ(windows.front().seq, 6u);
  EXPECT_EQ(windows.back().seq, 9u);
}

TEST(MetricsSamplerTest, RebaselineDropsWindowsAndSkipsResetGap) {
  Registry reg;
  MetricsSampler sampler(&reg);
  sampler.Tick(0);
  reg.counter("ops")->Add(100);
  sampler.Tick(kSec);
  ASSERT_EQ(sampler.window_count(), 1u);

  reg.Reset();
  sampler.Rebaseline(2 * kSec);
  EXPECT_EQ(sampler.window_count(), 0u);
  reg.counter("ops")->Add(42);
  sampler.Tick(3 * kSec);
  const auto windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 1u);
  // Delta is the post-reset 42, not a saturated reset-spanning value.
  EXPECT_EQ(windows[0].counter("ops"), 42u);
  EXPECT_EQ(windows[0].start_us, 2 * kSec);
}

TEST(MetricsSamplerTest, TimelineJsonRoundTrips) {
  Registry reg;
  MetricsSampler sampler(&reg);
  sampler.Tick(0);
  reg.counter("ops")->Add(250);
  reg.gauge("util")->Set(0.5);
  reg.timer("lat_us")->RecordUs(3.0);
  sampler.Tick(kSec);
  reg.counter("ops")->Add(750);
  sampler.Tick(2 * kSec);

  const std::string jsonl = TimelineToJson(sampler.Windows());
  const auto lines = testjson::ParseLines(jsonl);
  ASSERT_TRUE(lines.has_value()) << jsonl;
  ASSERT_EQ(lines->size(), 2u);

  const testjson::Value& first = (*lines)[0];
  EXPECT_EQ(first.NumberOr("seq", -1), 0.0);
  EXPECT_EQ(first.NumberOr("end_us", -1), static_cast<double>(kSec));
  const testjson::Value* counters = first.Find("counters");
  ASSERT_NE(counters, nullptr);
  const testjson::Value* ops = counters->Find("ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->NumberOr("delta"), 250.0);
  EXPECT_DOUBLE_EQ(ops->NumberOr("rate"), 250.0);
  const testjson::Value* gauges = first.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->NumberOr("util"), 0.5);
  const testjson::Value* timers = first.Find("timers");
  ASSERT_NE(timers, nullptr);
  const testjson::Value* lat = timers->Find("lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->NumberOr("count"), 1.0);

  const testjson::Value& second = (*lines)[1];
  const testjson::Value* ops2 = second.Find("counters")->Find("ops");
  ASSERT_NE(ops2, nullptr);
  EXPECT_EQ(ops2->NumberOr("delta"), 750.0);
}

TEST(MetricsSamplerTest, LiveThreadProducesWindows) {
  Registry reg;
  SamplerConfig cfg;
  cfg.window_us = 5'000;
  MetricsSampler sampler(&reg, cfg);
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Start();  // idempotent
  reg.counter("live")->Add(3);
  // Generously sized for a loaded single-core machine; Stop() flushes a
  // final window, so one window is guaranteed even if the thread never
  // got scheduled.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.window_count(), 1u);
  uint64_t total = 0;
  for (const auto& w : sampler.Windows()) total += w.counter("live");
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace catfish::telemetry

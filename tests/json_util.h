// A minimal JSON parser for tests: just enough to round-trip the
// documents the telemetry exporters emit (objects, arrays, strings with
// escapes, numbers, literals) into an inspectable tree. Not a general
// JSON library — duplicate keys keep the last value, \uXXXX escapes
// decode only the ASCII range, and numbers go through strtod.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace catfish::testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Object member by key; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const noexcept {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  double NumberOr(std::string_view key, double fallback = 0.0) const noexcept {
    const Value* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  std::optional<Value> Parse() {
    SkipWs();
    Value v;
    if (!ParseValue(v)) return std::nullopt;
    SkipWs();
    if (pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  bool ParseValue(Value& out) {
    switch (Peek()) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': out.kind = Value::Kind::kString; return ParseString(out.string);
      case 't': out.kind = Value::Kind::kBool; out.boolean = true;
                return Literal("true");
      case 'f': out.kind = Value::Kind::kBool; out.boolean = false;
                return Literal("false");
      case 'n': out.kind = Value::Kind::kNull; return Literal("null");
      default:  out.kind = Value::Kind::kNumber; return ParseNumber(out.number);
    }
  }

  bool ParseObject(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      Value v;
      if (!ParseValue(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseArray(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      Value v;
      if (!ParseValue(v)) return false;
      out.array.push_back(std::move(v));
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool ParseString(std::string& out) {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // ASCII decodes exactly; anything wider is preserved as '?'
          // (the exporters only \u-escape control characters).
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(double& out) {
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const noexcept { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\r' ||
            s_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

inline std::optional<Value> Parse(std::string_view s) {
  return Parser(s).Parse();
}

/// Splits a JSONL document into per-line parsed values; nullopt if any
/// line fails to parse.
inline std::optional<std::vector<Value>> ParseLines(std::string_view s) {
  std::vector<Value> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string_view::npos) end = s.size();
    const std::string_view line = s.substr(start, end - start);
    if (!line.empty()) {
      auto v = Parse(line);
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
    }
    start = end + 1;
  }
  return out;
}

}  // namespace catfish::testjson

// Shared helpers for the test suites: random rectangle generation and a
// brute-force spatial oracle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geo/rect.h"

namespace catfish::testutil {

/// Random rectangle in the unit square with edges uniform in (0, max_edge].
inline geo::Rect RandomRect(Xoshiro256& rng, double max_edge) {
  const double w = rng.NextDouble() * max_edge;
  const double h = rng.NextDouble() * max_edge;
  const double x = rng.NextDouble() * (1.0 - w);
  const double y = rng.NextDouble() * (1.0 - h);
  return geo::Rect{x, y, x + w, y + h};
}

/// O(n) reference implementation of rectangle intersection search.
class BruteForceIndex {
 public:
  void Insert(const geo::Rect& r, uint64_t id) { items_.emplace_back(r, id); }

  bool Delete(const geo::Rect& r, uint64_t id) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].second == id && items_[i].first == r) {
        items_[i] = items_.back();
        items_.pop_back();
        return true;
      }
    }
    return false;
  }

  /// Returns matching ids, sorted.
  std::vector<uint64_t> Search(const geo::Rect& q) const {
    std::vector<uint64_t> out;
    for (const auto& [rect, id] : items_) {
      if (rect.Intersects(q)) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  size_t size() const { return items_.size(); }
  const std::vector<std::pair<geo::Rect, uint64_t>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<geo::Rect, uint64_t>> items_;
};

}  // namespace catfish::testutil

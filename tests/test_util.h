// Shared helpers for the test suites: random rectangle generation, a
// brute-force spatial oracle, and deadline polling.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geo/rect.h"

namespace catfish::testutil {

/// Polls `pred` until it returns true or `timeout` elapses. Use instead
/// of fixed sleeps: passes as soon as the condition holds, fails loudly
/// (returns false) instead of flaking when the machine is slow.
template <typename Pred>
inline bool WaitUntil(
    Pred&& pred,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000),
    std::chrono::microseconds poll_every = std::chrono::microseconds(200)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (pred()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(poll_every);
  }
}

/// Random rectangle in the unit square with edges uniform in (0, max_edge].
inline geo::Rect RandomRect(Xoshiro256& rng, double max_edge) {
  const double w = rng.NextDouble() * max_edge;
  const double h = rng.NextDouble() * max_edge;
  const double x = rng.NextDouble() * (1.0 - w);
  const double y = rng.NextDouble() * (1.0 - h);
  return geo::Rect{x, y, x + w, y + h};
}

/// O(n) reference implementation of rectangle intersection search.
class BruteForceIndex {
 public:
  void Insert(const geo::Rect& r, uint64_t id) { items_.emplace_back(r, id); }

  bool Delete(const geo::Rect& r, uint64_t id) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].second == id && items_[i].first == r) {
        items_[i] = items_.back();
        items_.pop_back();
        return true;
      }
    }
    return false;
  }

  /// Returns matching ids, sorted.
  std::vector<uint64_t> Search(const geo::Rect& q) const {
    std::vector<uint64_t> out;
    for (const auto& [rect, id] : items_) {
      if (rect.Intersects(q)) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Rect stored under `id` (first match). Precondition: id is present.
  geo::Rect RectOf(uint64_t id) const {
    for (const auto& [rect, stored] : items_) {
      if (stored == id) return rect;
    }
    return geo::Rect{};
  }

  size_t size() const { return items_.size(); }
  const std::vector<std::pair<geo::Rect, uint64_t>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<geo::Rect, uint64_t>> items_;
};

}  // namespace catfish::testutil

// Failover chaos suite: kill the primary of a replicated shard
// mid-burst and assert the replication invariants end to end:
//  * a follower is promoted (operator Promote() or the host's failover
//    watchdog), the map republishes under a bumped version + epoch, and
//    surviving clients converge onto the new primary;
//  * every write acked before, during, or after the failover is present
//    exactly once afterwards — the shipped WAL + follower dedup carry
//    the exactly-once protocol across the promotion;
//  * follower reads keep fan-out queries whole while the primary is
//    dead, and graceful degradation (allow_partial) surfaces per-shard
//    errors instead of failing the whole fan-out;
//  * a crash-looping shard (restarted repeatedly mid-burst) neither
//    loses nor duplicates acked writes, and clients re-converge.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "shard/client.h"
#include "shard/host.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;
using testutil::WaitUntil;

class FailoverChaosTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 2;
  static constexpr uint64_t kItems = 1'500;

  void StartHost(uint32_t num_replicas, bool auto_failover = false) {
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    shard::ShardHostConfig cfg;
    cfg.num_shards = kShards;
    cfg.server.heartbeat_interval_us = 1'000;
    cfg.durable = true;
    cfg.durability.checkpoint_wal_bytes = 32 * 1024;
    cfg.min_slop = 0.01;
    cfg.num_replicas = num_replicas;
    cfg.auto_failover = auto_failover;
    cfg.failover_grace_us = 10'000;
    cfg.failover_check_interval_us = 2'000;
    host_ = std::make_unique<shard::ShardHost>(*fabric_, cfg);

    Xoshiro256 rng(13);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < kItems; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      loaded_.push_back({r, i});
    }
    host_->Load(items);
  }

  void TearDown() override {
    if (host_) host_->Stop();
  }

  shard::ShardedClientConfig BaseConfig() {
    shard::ShardedClientConfig cfg;
    cfg.client.adaptive.heartbeat_interval_us = 1'000;
    cfg.client.watchdog.enabled = true;
    cfg.client.watchdog.suspect_after = 5;
    cfg.client.watchdog.disconnect_after = 15;
    cfg.client.request_timeout_us = 2'000'000;
    cfg.client.remote_retry.max_attempts = 8;
    cfg.client.remote_retry.backoff_base_us = 1;
    cfg.client.remote_retry.backoff_cap_us = 50;
    // A failover can stall a write past several timeouts; the per-shard
    // session retries with the original req_id — that plus the shipped
    // dedup state is the exactly-once protocol under test.
    cfg.client.write_attempts = 50;
    return cfg;
  }

  std::unique_ptr<shard::ShardedRTreeClient> Connect(
      const std::string& name, shard::ShardedClientConfig cfg) {
    auto node = fabric_->CreateNode(name);
    return std::make_unique<shard::ShardedRTreeClient>(
        node, [this](uint32_t s) { return host_->Dial(s); }, cfg);
  }

  std::unique_ptr<shard::ShardedRTreeClient> Connect(const std::string& name) {
    return Connect(name, BaseConfig());
  }

  /// BaseConfig plus follower read routing wired to the host.
  shard::ShardedClientConfig FollowerReadConfig() {
    auto cfg = BaseConfig();
    cfg.client.mode = ClientMode::kOffloadOnly;
    cfg.read_from_followers = true;
    cfg.max_replica_lag = 64;
    cfg.replica_dial = [this](uint32_t s, uint32_t r) {
      return host_->DialReplica(s, r);
    };
    return cfg;
  }

  /// Sorted ids from a full-region scan through `client`.
  static std::vector<uint64_t> ScanAll(shard::ShardedRTreeClient& client) {
    std::vector<uint64_t> ids;
    for (const auto& e : client.Search(geo::Rect{-1.0, -1.0, 2.0, 2.0})) {
      ids.push_back(e.id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<shard::ShardHost> host_;
  std::vector<std::pair<geo::Rect, uint64_t>> loaded_;
};

TEST_F(FailoverChaosTest, FollowerReadsKeepFanoutWholeAndCorrect) {
  StartHost(/*num_replicas=*/2);
  auto client = Connect("reader", FollowerReadConfig());
  ASSERT_EQ(client->map().shards[0].followers.size(), 2u);

  Xoshiro256 rng(41);
  testutil::BruteForceIndex oracle;
  for (const auto& [r, id] : loaded_) oracle.Insert(r, id);

  for (int i = 0; i < 30; ++i) {
    const auto q = RandomRect(rng, 0.3);
    std::vector<uint64_t> ids;
    for (const auto& e : client->Search(q)) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, oracle.Search(q)) << "query " << i;
  }
  // The offloaded sub-queries were actually served by followers, not
  // the primary — and none fell back.
  EXPECT_GT(client->stats().follower_reads, 0u);
  EXPECT_EQ(client->stats().partial_results, 0u);
}

TEST_F(FailoverChaosTest, PromotionKeepsAckedWritesExactlyOnce) {
  StartHost(/*num_replicas=*/2);
  constexpr int kWriters = 3;
  constexpr uint64_t kWritesPerThread = 250;
  constexpr uint32_t kVictim = 1;

  const uint64_t epoch_before = host_->map().shards[kVictim].epoch;

  std::mutex mu;
  std::vector<uint64_t> acked;
  std::vector<uint64_t> unacked;
  std::atomic<bool> outage{false};
  std::atomic<uint64_t> reads_during_outage{0};

  // Connect every client before the kill timer starts: a bootstrap that
  // races into the outage window throws (no live acceptor / no hello) —
  // that is the documented fresh-client contract, not what this test
  // exercises. The burst below runs ~20 ms before the kill regardless.
  std::vector<std::unique_ptr<shard::ShardedRTreeClient>> writer_clients;
  for (int t = 0; t < kWriters; ++t) {
    writer_clients.push_back(Connect("writer-" + std::to_string(t)));
  }
  auto reader_client = Connect("reader", FollowerReadConfig());

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      shard::ShardedRTreeClient* client = writer_clients[t].get();
      Xoshiro256 rng(100 + t);
      for (uint64_t i = 0; i < kWritesPerThread; ++i) {
        const auto r = RandomRect(rng, 0.01);
        const uint64_t id = 10'000 + t * kWritesPerThread + i;
        try {
          ASSERT_TRUE(client->Insert(r, id));
          const std::scoped_lock lock(mu);
          acked.push_back(id);
        } catch (const shard::ShardError&) {
          // Kill window: the write may or may not have landed on the
          // promoted follower, but it must not land twice.
          const std::scoped_lock lock(mu);
          unacked.push_back(id);
        }
      }
    });
  }

  // A surviving reader routed to followers: its fan-out queries must
  // keep completing *during* the outage (the dead primary's slice is
  // served by its replicas).
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    shard::ShardedRTreeClient* client = reader_client.get();
    Xoshiro256 rng(77);
    while (!stop_reader.load()) {
      try {
        (void)client->Search(RandomRect(rng, 0.3));
        if (outage.load()) reads_during_outage.fetch_add(1);
      } catch (const shard::ShardError&) {
        // Transient re-bootstrap races are tolerated; progress is
        // asserted below.
      }
      std::this_thread::sleep_for(500us);
    }
  });

  // A gtest ASSERT below returns from the test body early; joinable
  // threads must still be reaped or their destructors call terminate.
  struct JoinGuard {
    std::atomic<bool>& stop;
    std::vector<std::thread>& ws;
    std::thread& r;
    ~JoinGuard() {
      stop.store(true);
      for (auto& w : ws) {
        if (w.joinable()) w.join();
      }
      if (r.joinable()) r.join();
    }
  } join_guard{stop_reader, writers, reader};

  // Crash the victim's primary mid-burst, let the watchdogs notice,
  // then fail over to the most-caught-up follower. The outage window
  // stays open until the surviving reader has completed at least one
  // fan-out against the dead primary's followers — a fixed window
  // flakes when a sanitizer stretches a single search past it.
  std::this_thread::sleep_for(20ms);
  outage.store(true);
  host_->KillPrimary(kVictim);
  ASSERT_TRUE(
      WaitUntil([&] { return reads_during_outage.load() >= 1; }, 20s));
  EXPECT_NE(host_->Promote(kVictim), UINT32_MAX);
  outage.store(false);

  for (auto& w : writers) w.join();
  stop_reader.store(true);
  reader.join();

  // Control plane: one promotion, epoch fenced forward, map republished.
  EXPECT_EQ(host_->promotions(), 1u);
  EXPECT_GT(host_->map().shards[kVictim].epoch, epoch_before);
  EXPECT_GT(host_->map_version(), 1u);

  // A fresh client scans the union of all shards; every acked write is
  // present exactly once, unacked at most once, and the bulk-loaded
  // slice of the failed-over shard survived intact.
  auto checker = Connect("checker");
  const auto ids = ScanAll(*checker);
  auto count_of = [&ids](uint64_t id) {
    const auto [lo, hi] = std::equal_range(ids.begin(), ids.end(), id);
    return static_cast<size_t>(hi - lo);
  };
  for (const auto& [rect, id] : loaded_) {
    ASSERT_EQ(count_of(id), 1u) << "bulk-loaded id " << id;
  }
  {
    const std::scoped_lock lock(mu);
    for (const uint64_t id : acked) {
      ASSERT_EQ(count_of(id), 1u) << "acked insert " << id;
    }
    for (const uint64_t id : unacked) {
      ASSERT_LE(count_of(id), 1u) << "unacked insert " << id;
    }
    // The burst must have been meaningful on both sides of the outage.
    EXPECT_GT(acked.size(), kWritesPerThread);
  }
}

TEST_F(FailoverChaosTest, WatchdogPromotesWithoutOperatorAction) {
  StartHost(/*num_replicas=*/1, /*auto_failover=*/true);
  auto client = Connect("writer");

  host_->KillPrimary(0);
  // The host's failover watchdog notices the dead primary after the
  // grace period and promotes the follower on its own.
  ASSERT_TRUE(WaitUntil([&] { return host_->promotions() >= 1; }, 10s));
  EXPECT_GT(host_->map().shards[0].epoch, 0u);

  // Writes to the failed-over shard flow again; reads see the full
  // bulk-loaded set (the follower had everything).
  ASSERT_TRUE(WaitUntil(
      [&] {
        try {
          return client->Insert(geo::Rect{0.5, 0.5, 0.505, 0.505}, 999'999);
        } catch (const shard::ShardError&) {
          return false;
        }
      },
      15s));
  const auto ids = ScanAll(*client);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 999'999u));
  for (const auto& [rect, id] : loaded_) {
    ASSERT_TRUE(std::binary_search(ids.begin(), ids.end(), id))
        << "lost bulk-loaded id " << id;
  }
}

TEST_F(FailoverChaosTest, CrashLoopKeepsWritesExactlyOnceAndReconverges) {
  StartHost(/*num_replicas=*/1);
  constexpr uint64_t kWrites = 400;
  constexpr uint32_t kVictim = 0;
  constexpr int kCrashes = 3;

  std::mutex mu;
  std::vector<uint64_t> acked;
  std::vector<uint64_t> unacked;
  std::atomic<bool> done{false};

  // Connect before the crash loop starts: a bootstrap racing into a
  // restart window throws by contract (fresh clients retry construction);
  // this test is about a client that was already connected riding it out.
  auto writer_client = Connect("crash-loop-writer");
  std::thread writer([&] {
    shard::ShardedRTreeClient* client = writer_client.get();
    Xoshiro256 rng(55);
    for (uint64_t i = 0; i < kWrites; ++i) {
      const auto r = RandomRect(rng, 0.01);
      const uint64_t id = 50'000 + i;
      try {
        // ok=false is the semi-sync gate refusing to ack mid-restart:
        // locally durable but not follower-covered — indeterminate, the
        // same bucket as a thrown sub-query.
        if (client->Insert(r, id)) {
          const std::scoped_lock lock(mu);
          acked.push_back(id);
        } else {
          const std::scoped_lock lock(mu);
          unacked.push_back(id);
        }
      } catch (const shard::ShardError&) {
        const std::scoped_lock lock(mu);
        unacked.push_back(id);
      }
    }
    // The client rode out every crash through watchdog trips and
    // re-bootstraps — the back-off escalates into the outage and
    // de-escalates once the shard answers again.
    uint64_t trips = 0, reconnects = 0;
    for (uint32_t s = 0; s < kShards; ++s) {
      trips += client->shard_client(s).stats().watchdog_trips;
      reconnects += client->shard_client(s).stats().reconnects;
    }
    EXPECT_GE(trips, 1u);
    EXPECT_GE(reconnects, 1u);
    done.store(true);
  });

  // Crash-loop the victim mid-burst: repeated full restarts, each one
  // bumping the generation and republishing the map.
  for (int c = 0; c < kCrashes && !done.load(); ++c) {
    std::this_thread::sleep_for(25ms);
    host_->RestartShard(kVictim);
  }
  writer.join();
  EXPECT_GE(host_->map_version(), static_cast<uint64_t>(kCrashes));

  auto checker = Connect("checker");
  const auto ids = ScanAll(*checker);
  auto count_of = [&ids](uint64_t id) {
    const auto [lo, hi] = std::equal_range(ids.begin(), ids.end(), id);
    return static_cast<size_t>(hi - lo);
  };
  {
    const std::scoped_lock lock(mu);
    for (const uint64_t id : acked) {
      ASSERT_EQ(count_of(id), 1u) << "acked insert " << id;
    }
    for (const uint64_t id : unacked) {
      ASSERT_LE(count_of(id), 1u) << "unacked insert " << id;
    }
    EXPECT_GT(acked.size(), kWrites / 4);
  }
  for (const auto& [rect, id] : loaded_) {
    ASSERT_EQ(count_of(id), 1u) << "bulk-loaded id " << id;
  }
}

TEST_F(FailoverChaosTest, AllowPartialSurfacesPerShardErrors) {
  StartHost(/*num_replicas=*/0);

  // Strict client: a dead shard fails the whole fan-out.
  auto strict = Connect("strict");
  // Degraded client: the healthy shards' union comes back, with the
  // failure tagged per shard.
  auto degraded_cfg = BaseConfig();
  degraded_cfg.allow_partial = true;
  degraded_cfg.client.request_timeout_us = 100'000;
  degraded_cfg.client.write_attempts = 2;
  auto degraded = Connect("degraded", degraded_cfg);

  host_->KillPrimary(1);  // no replicas: the shard stays dead

  const geo::Rect all{-1.0, -1.0, 2.0, 2.0};
  EXPECT_THROW((void)strict->Search(all), shard::ShardError);

  const auto partial = degraded->SearchPartial(all);
  EXPECT_FALSE(partial.complete());
  ASSERT_EQ(partial.errors.size(), 1u);
  EXPECT_EQ(partial.errors.front().shard(), 1u);
  EXPECT_GE(degraded->stats().partial_results, 1u);

  // The surviving shard's slice is complete in the partial answer.
  std::vector<uint64_t> got;
  for (const auto& e : partial.entries) got.push_back(e.id);
  std::sort(got.begin(), got.end());
  const auto& map = host_->map();
  size_t expected = 0;
  for (const auto& [rect, id] : loaded_) {
    if (map.OwnerOf(rect) == 0) {
      ++expected;
      EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id));
    }
  }
  EXPECT_EQ(got.size(), expected);

  // Search() under allow_partial degrades the same way without
  // throwing; with no follower to promote, Promote reports failure.
  EXPECT_NO_THROW((void)degraded->Search(all));
  EXPECT_EQ(host_->Promote(1), UINT32_MAX);
}

}  // namespace
}  // namespace catfish

#include "tcpkit/tcp_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/rng.h"
#include "rtree/bulk_load.h"
#include "test_util.h"

namespace catfish::tcpkit {
namespace {

using namespace std::chrono_literals;
using testutil::BruteForceIndex;
using testutil::RandomRect;

TEST(StreamTest, BytesFlowBothWays) {
  auto [a, b] = Stream::CreatePair();
  const std::vector<std::byte> ping{std::byte{1}, std::byte{2}};
  ASSERT_TRUE(a->Send(ping));
  std::byte buf[8];
  EXPECT_EQ(b->Recv(buf, 100ms), 2u);
  EXPECT_EQ(buf[1], std::byte{2});

  const std::vector<std::byte> pong{std::byte{9}};
  ASSERT_TRUE(b->Send(pong));
  EXPECT_EQ(a->Recv(buf, 100ms), 1u);
  EXPECT_EQ(buf[0], std::byte{9});
}

TEST(StreamTest, RecvTimesOutWhenEmpty) {
  auto [a, b] = Stream::CreatePair();
  (void)a;
  std::byte buf[4];
  EXPECT_EQ(b->Recv(buf, 5ms), 0u);
}

TEST(StreamTest, CloseStopsTraffic) {
  auto [a, b] = Stream::CreatePair();
  a->Close();
  EXPECT_TRUE(b->closed());
  const std::vector<std::byte> data{std::byte{1}};
  EXPECT_FALSE(b->Send(data));
  std::byte buf[4];
  EXPECT_EQ(a->Recv(buf, 5ms), 0u);
}

TEST(StreamTest, PartialReads) {
  auto [a, b] = Stream::CreatePair();
  std::vector<std::byte> data(100);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  ASSERT_TRUE(a->Send(data));
  std::byte buf[30];
  size_t total = 0;
  while (total < 100) {
    const size_t n = b->Recv(buf, 100ms);
    ASSERT_GT(n, 0u);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::byte>(total + i));
    }
    total += n;
  }
}

TEST(FramedConnectionTest, FrameRoundTrip) {
  auto [a, b] = Stream::CreatePair();
  FramedConnection ca(a);
  FramedConnection cb(b);
  std::vector<std::byte> payload(500, std::byte{0x7});
  ASSERT_TRUE(ca.SendFrame(3, msg::kFlagEnd, payload));
  const auto m = cb.RecvFrame(100ms);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 3);
  EXPECT_EQ(m->flags, msg::kFlagEnd);
  EXPECT_EQ(m->payload, payload);
}

TEST(FramedConnectionTest, ManyFramesKeepBoundaries) {
  auto [a, b] = Stream::CreatePair();
  FramedConnection ca(a);
  FramedConnection cb(b);
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::byte> payload(rng.NextBounded(300));
    for (auto& x : payload) x = static_cast<std::byte>(i);
    ASSERT_TRUE(ca.SendFrame(static_cast<uint16_t>(i & 0xffff), 0, payload));
    const auto m = cb.RecvFrame(100ms);
    ASSERT_TRUE(m.has_value());
    ASSERT_EQ(m->type, i & 0xffff);
    ASSERT_EQ(m->payload, payload);
  }
}

class TcpRTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 14);
    Xoshiro256 rng(7);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 2000; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      oracle_.Insert(r, i);
    }
    tree_ = std::make_unique<rtree::RStarTree>(
        rtree::BulkLoad(*arena_, items));
    server_ = std::make_unique<TcpRTreeServer>(*tree_);
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<TcpRTreeServer> server_;
  BruteForceIndex oracle_;
};

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST_F(TcpRTreeTest, SearchMatchesOracle) {
  TcpRTreeClient client(*server_);
  Xoshiro256 rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client.Search(q)), oracle_.Search(q));
  }
  EXPECT_EQ(server_->searches(), 50u);
}

TEST_F(TcpRTreeTest, InsertDeleteRoundTrip) {
  TcpRTreeClient client(*server_);
  const geo::Rect r{0.2, 0.2, 0.21, 0.21};
  EXPECT_TRUE(client.Insert(r, 99999));
  auto ids = Ids(client.Search(r));
  EXPECT_NE(std::find(ids.begin(), ids.end(), 99999u), ids.end());
  EXPECT_TRUE(client.Delete(r, 99999));
  EXPECT_FALSE(client.Delete(r, 99999));
}

TEST_F(TcpRTreeTest, LargeSegmentedResponse) {
  TcpRTreeClient client(*server_);
  const auto all = client.Search(geo::Rect{0, 0, 1, 1});
  EXPECT_EQ(all.size(), 2000u);
}

TEST_F(TcpRTreeTest, ConcurrentClients) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      TcpRTreeClient client(*server_);
      Xoshiro256 rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < 30; ++i) {
        const auto q = RandomRect(rng, 0.03);
        if (Ids(client.Search(q)) != oracle_.Search(q)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TcpRTreeTest, ParityWithRdmaResults) {
  // The TCP baseline and the RDMA paths serve identical results — the
  // protocol payloads are shared.
  TcpRTreeClient client(*server_);
  Xoshiro256 rng(9);
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    std::vector<rtree::Entry> direct;
    tree_->Search(q, direct);
    EXPECT_EQ(Ids(client.Search(q)), Ids(direct));
  }
}

}  // namespace
}  // namespace catfish::tcpkit

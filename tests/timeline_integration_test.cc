// End-to-end acceptance of the time-resolved observability stack: run
// the DES Catfish cluster in the CPU-bound regime with a virtual-time
// MetricsSampler attached and the global flight recorder armed, then
// reconstruct the adaptive story *from the timeline and event output
// alone* — offload share rising while the server utilization gauge sits
// above the busy threshold T, and back-off escalations / mode switches
// appearing in timestamp order, causally after a busy heartbeat.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "json_util.h"
#include "model/cluster_sim.h"
#include "rtree/bulk_load.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "workload/generators.h"

namespace catfish::model {
namespace {

struct Testbed {
  std::unique_ptr<rtree::NodeArena> arena;
  std::unique_ptr<rtree::RStarTree> tree;

  explicit Testbed(size_t n = 50'000) {
    arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 15);
    const auto items = workload::UniformDataset(n, 1e-4, 99);
    tree = std::make_unique<rtree::RStarTree>(rtree::BulkLoad(*arena, items));
  }
};

TEST(TimelineIntegrationTest, TimelineAndFlightRecorderTellAdaptiveStory) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#else
  Testbed tb;

  // The CPU-bound saturating regime of the ablation bench: many small
  // searches through the worker pool until utilization crosses T.
  ClusterConfig cfg;
  cfg.scheme = Scheme::kCatfish;
  cfg.num_clients = 128;
  cfg.requests_per_client = 200;
  cfg.workload.dist = workload::RequestGen::ScaleDist::kFixed;
  cfg.workload.scale = 1e-5;
  cfg.seed = 42;

  telemetry::Registry::Global().Reset();
  telemetry::EventRecorder::Global().Clear();
  telemetry::SamplerConfig scfg;
  scfg.window_us = 200;
  scfg.retain = 1 << 16;
  telemetry::MetricsSampler sampler(&telemetry::Registry::Global(), scfg);
  cfg.sampler = &sampler;

  const RunResult r = ClusterSim(*tb.tree, cfg).Run();
  ASSERT_EQ(r.completed, 128u * 200u);
  ASSERT_GT(r.offloaded_searches, 0u)
      << "regime not saturating; adaptive scheme never offloaded";

  // --- timeline -----------------------------------------------------------
  const auto windows = sampler.Windows();
  ASSERT_GE(windows.size(), 10u);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].start_us, windows[i - 1].end_us);
    EXPECT_EQ(windows[i].seq, windows[i - 1].seq + 1);
  }

  // The server utilization gauge must show the busy condition (> T).
  const double peak_util =
      std::max_element(windows.begin(), windows.end(),
                       [](const auto& a, const auto& b) {
                         return a.gauge("catfish.server.utilization") <
                                b.gauge("catfish.server.utilization");
                       })
          ->gauge("catfish.server.utilization");
  EXPECT_GT(peak_util, cfg.adaptive.busy_threshold);

  // Offload share rises: once the controller reacts, the late half of
  // the run offloads a strictly larger share than the early half.
  uint64_t early_fast = 0, early_off = 0, late_fast = 0, late_off = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    const auto& w = windows[i];
    if (i < windows.size() / 2) {
      early_fast += w.counter("catfish.client.search.fast");
      early_off += w.counter("catfish.client.search.offload");
    } else {
      late_fast += w.counter("catfish.client.search.fast");
      late_off += w.counter("catfish.client.search.offload");
    }
  }
  const double early_share =
      early_fast + early_off > 0
          ? static_cast<double>(early_off) /
                static_cast<double>(early_fast + early_off)
          : 0.0;
  const double late_share =
      late_fast + late_off > 0
          ? static_cast<double>(late_off) /
                static_cast<double>(late_fast + late_off)
          : 0.0;
  EXPECT_GT(late_share, early_share);

  // The JSONL export of the same windows stays parseable end to end.
  const auto lines = testjson::ParseLines(telemetry::TimelineToJson(windows));
  ASSERT_TRUE(lines.has_value());
  EXPECT_EQ(lines->size(), windows.size());

  // --- flight recorder ----------------------------------------------------
  const auto events = telemetry::EventRecorder::Global().Drain();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_us, events[i - 1].t_us);
  }

  uint64_t first_offload_switch = 0;
  bool saw_offload_switch = false;
  size_t escalations = 0, switches = 0, heartbeats = 0;
  for (const auto& e : events) {
    switch (e.type) {
      case telemetry::EventType::kBackoffEscalate: ++escalations; break;
      case telemetry::EventType::kHeartbeat: ++heartbeats; break;
      case telemetry::EventType::kModeSwitch:
        ++switches;
        if (e.a == 1.0 && !saw_offload_switch) {
          saw_offload_switch = true;
          first_offload_switch = e.t_us;
        }
        break;
      default: break;
    }
  }
  EXPECT_GT(heartbeats, 0u);
  EXPECT_GT(switches, 0u);
  EXPECT_GT(escalations, 0u);
  EXPECT_EQ(switches, r.mode_switches);
  EXPECT_EQ(escalations, r.adaptive_escalations);

  // Causality: the first switch to offload happens only after some
  // heartbeat delivered a utilization above T.
  ASSERT_TRUE(saw_offload_switch);
  bool busy_heartbeat_before_switch = false;
  for (const auto& e : events) {
    if (e.t_us > first_offload_switch) break;
    if (e.type == telemetry::EventType::kHeartbeat &&
        e.a > cfg.adaptive.busy_threshold) {
      busy_heartbeat_before_switch = true;
      break;
    }
  }
  EXPECT_TRUE(busy_heartbeat_before_switch);
#endif
}

TEST(TimelineIntegrationTest, SamplerWindowsCoverTheWholeRun) {
#if !CATFISH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CATFISH_TELEMETRY=OFF)";
#else
  Testbed tb;
  ClusterConfig cfg;
  cfg.scheme = Scheme::kFastMessaging;
  cfg.num_clients = 8;
  cfg.requests_per_client = 100;
  cfg.workload.dist = workload::RequestGen::ScaleDist::kFixed;
  cfg.workload.scale = 1e-4;
  cfg.seed = 7;

  telemetry::Registry::Global().Reset();
  telemetry::SamplerConfig scfg;
  scfg.window_us = 500;
  telemetry::MetricsSampler sampler(&telemetry::Registry::Global(), scfg);
  cfg.sampler = &sampler;

  const RunResult r = ClusterSim(*tb.tree, cfg).Run();
  const auto windows = sampler.Windows();
  ASSERT_FALSE(windows.empty());
  // Every completed search appears in exactly one window: the deltas
  // over the whole timeline add up to the run totals (the final flush
  // closes the tail window).
  uint64_t fast = 0;
  for (const auto& w : windows) {
    fast += w.counter("catfish.client.search.fast");
  }
  EXPECT_EQ(fast, r.fast_searches);
  EXPECT_GE(windows.back().end_us,
            static_cast<uint64_t>(r.duration_us) - scfg.window_us);
#endif
}

}  // namespace
}  // namespace catfish::model

#include "msg/ring.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace catfish::msg {
namespace {

// A connected sender/receiver pair over the instant fabric.
struct RingPair {
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  std::shared_ptr<rdma::SimNode> a = fabric.CreateNode("sender");
  std::shared_ptr<rdma::SimNode> b = fabric.CreateNode("receiver");
  std::shared_ptr<rdma::QueuePair> a_qp, b_qp;
  std::vector<std::byte> ring_mem;
  alignas(8) std::array<std::byte, 8> ack_cell{};
  std::unique_ptr<RingSender> tx;
  std::unique_ptr<RingReceiver> rx;

  explicit RingPair(size_t capacity = 4096) : ring_mem(capacity) {
    a_qp = a->CreateQp(a->CreateCq(), a->CreateCq());
    b_qp = b->CreateQp(b->CreateCq(), b->CreateCq());
    rdma::QueuePair::Connect(a_qp, b_qp);
    const auto ring_mr = b->RegisterMemory(ring_mem);
    const auto ack_mr = a->RegisterMemory(ack_cell);
    tx = std::make_unique<RingSender>(a_qp,
                                      rdma::RemoteAddr{ring_mr.rkey, 0},
                                      capacity, std::span<std::byte>(ack_cell));
    rx = std::make_unique<RingReceiver>(std::span<std::byte>(ring_mem), b_qp,
                                        rdma::RemoteAddr{ack_mr.rkey, 0});
  }
};

std::vector<std::byte> Payload(size_t n, uint8_t fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(RingTest, WireSizeRounding) {
  EXPECT_EQ(WireSize(0), 16u);   // 12 header + 1 commit → 16
  EXPECT_EQ(WireSize(3), 16u);
  EXPECT_EQ(WireSize(4), 24u);   // 12 + 4 + 1 = 17 → 24
  EXPECT_EQ(WireSize(11), 24u);
}

TEST(RingTest, EmptyRingReceivesNothing) {
  RingPair p;
  EXPECT_FALSE(p.rx->TryReceive().has_value());
}

TEST(RingTest, SingleMessageRoundTrip) {
  RingPair p;
  const auto payload = Payload(100, 0x42);
  ASSERT_TRUE(p.tx->TrySend(5, kFlagEnd, payload));

  const auto m = p.rx->TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 5);
  EXPECT_EQ(m->flags, kFlagEnd);
  EXPECT_EQ(m->payload, payload);
  EXPECT_FALSE(p.rx->TryReceive().has_value());
}

TEST(RingTest, EmptyPayloadMessage) {
  RingPair p;
  ASSERT_TRUE(p.tx->TrySend(9, kFlagCont, {}));
  const auto m = p.rx->TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 9);
  EXPECT_TRUE(m->payload.empty());
}

TEST(RingTest, FifoAcrossManyMessages) {
  RingPair p;
  for (uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(p.tx->TrySend(i, kFlagEnd, Payload(i * 3, i)));
    const auto m = p.rx->TryReceive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, i);
    EXPECT_EQ(m->payload.size(), static_cast<size_t>(i) * 3);
  }
}

TEST(RingTest, BackpressureWhenReceiverStalls) {
  RingPair p(512);
  size_t sent = 0;
  while (p.tx->TrySend(1, kFlagEnd, Payload(100, 1))) ++sent;
  // 512-byte ring, 128-byte wire messages: bounded sends, then full.
  EXPECT_GE(sent, 2u);
  EXPECT_LE(sent, 4u);

  // Draining one message (which acks) re-opens space.
  ASSERT_TRUE(p.rx->TryReceive().has_value());
  EXPECT_TRUE(p.tx->TrySend(1, kFlagEnd, Payload(100, 2)));
}

TEST(RingTest, WrapAroundWithPad) {
  RingPair p(256);
  // Messages of wire size 72 (56B payload): after 3 sends the 4th needs
  // a PAD (256 - 216 = 40 contiguous < 72).
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(p.tx->TrySend(7, kFlagEnd, Payload(56, 7)))
        << "round " << round;
    const auto m = p.rx->TryReceive();
    ASSERT_TRUE(m.has_value()) << "round " << round;
    EXPECT_EQ(m->payload.size(), 56u);
    EXPECT_EQ(m->payload[0], std::byte{7});
  }
}

TEST(RingTest, MaxPayloadMessageFits) {
  RingPair p(1024);
  const size_t max = p.tx->MaxPayload();
  EXPECT_EQ(max, 1024 / 2 - kMsgHeaderBytes - 1);
  ASSERT_TRUE(p.tx->TrySend(2, kFlagEnd, Payload(max, 0xee)));
  const auto m = p.rx->TryReceive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.size(), max);
}

TEST(RingTest, RandomizedSizesSurviveManyWraps) {
  RingPair p(2048);
  Xoshiro256 rng(12345);
  for (int i = 0; i < 3000; ++i) {
    const size_t n = rng.NextBounded(p.tx->MaxPayload() + 1);
    const auto fill = static_cast<uint8_t>(rng.Next());
    const auto payload = Payload(n, fill);
    ASSERT_TRUE(p.tx->TrySend(static_cast<uint16_t>(i & 0xffff), kFlagEnd,
                              payload));
    const auto m = p.rx->TryReceive();
    ASSERT_TRUE(m.has_value()) << "iteration " << i;
    ASSERT_EQ(m->payload, payload) << "iteration " << i;
  }
}

TEST(RingTest, PipelinedBatchThenDrain) {
  RingPair p(4096);
  // Queue several messages before draining any.
  int sent = 0;
  for (; sent < 10; ++sent) {
    if (!p.tx->TrySend(static_cast<uint16_t>(sent), kFlagEnd,
                       Payload(64, static_cast<uint8_t>(sent)))) {
      break;
    }
  }
  ASSERT_GE(sent, 10);
  for (int i = 0; i < sent; ++i) {
    const auto m = p.rx->TryReceive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, i);
  }
  EXPECT_FALSE(p.rx->TryReceive().has_value());
}

// A sender stuck on a full ring must make zero progress — and zero
// damage — for any number of refused attempts, then recover exactly
// one slot per drained message with FIFO and payloads intact.
TEST(RingTest, SenderBlockedOnFullRing) {
  RingPair p(512);
  size_t sent = 0;
  while (p.tx->TrySend(static_cast<uint16_t>(sent), kFlagEnd,
                       Payload(100, static_cast<uint8_t>(sent)))) {
    ++sent;
  }
  ASSERT_GE(sent, 2u);

  // Hammering the full ring is refused every time and corrupts nothing.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(p.tx->TrySend(99, kFlagEnd, Payload(100, 0xee)));
  }

  // Each drained message re-opens exactly one same-sized slot.
  for (size_t i = 0; i < sent; ++i) {
    const auto m = p.rx->TryReceive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, static_cast<uint16_t>(i));
    EXPECT_EQ(m->payload, Payload(100, static_cast<uint8_t>(i)));
    EXPECT_TRUE(p.tx->TrySend(static_cast<uint16_t>(100 + i), kFlagEnd,
                              Payload(100, static_cast<uint8_t>(i))));
    EXPECT_FALSE(p.tx->TrySend(99, kFlagEnd, Payload(100, 0xee)));
  }

  // The refills come out in order behind the originals.
  for (size_t i = 0; i < sent; ++i) {
    const auto m = p.rx->TryReceive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, static_cast<uint16_t>(100 + i));
  }
  EXPECT_FALSE(p.rx->TryReceive().has_value());
}

// Bursty consumer: the producer pumps flat out against a small ring
// while the receiver alternates naps with drain-everything sweeps —
// the aggressor-vs-slow-receiver shape the overload path sees. Every
// message must arrive exactly once, in order, bit-identical.
TEST(RingTest, ReceiverDrainUnderBurst) {
  RingPair p(1024);
  constexpr int kMessages = 4000;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload(1 + (i % 150));
      for (auto& b : payload) b = static_cast<std::byte>(i & 0xff);
      while (!p.tx->TrySend(static_cast<uint16_t>(i & 0x7fff), kFlagEnd,
                            payload)) {
        std::this_thread::yield();
      }
    }
  });
  int received = 0;
  while (received < kMessages) {
    // Let the producer fill the ring to back-pressure, then sweep.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    while (const auto m = p.rx->TryReceive()) {
      ASSERT_EQ(m->type, received & 0x7fff);
      ASSERT_EQ(m->payload.size(), 1u + (received % 150));
      for (const auto b : m->payload) {
        ASSERT_EQ(b, static_cast<std::byte>(received & 0xff));
      }
      ++received;
    }
  }
  producer.join();
  EXPECT_FALSE(p.rx->TryReceive().has_value());
}

TEST(RingTest, CrossThreadStream) {
  RingPair p(1024);
  constexpr int kMessages = 20000;
  std::thread producer([&] {
    Xoshiro256 rng(5);
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload(rng.NextBounded(200));
      for (auto& b : payload) b = static_cast<std::byte>(i & 0xff);
      while (!p.tx->TrySend(static_cast<uint16_t>(i & 0x7fff), kFlagEnd,
                            payload)) {
        std::this_thread::yield();
      }
    }
  });
  int received = 0;
  Xoshiro256 rng(5);  // same stream to recompute expected sizes
  while (received < kMessages) {
    const auto m = p.rx->TryReceive();
    if (!m) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(m->type, received & 0x7fff);
    ASSERT_EQ(m->payload.size(), rng.NextBounded(200));
    for (const auto b : m->payload) {
      ASSERT_EQ(b, static_cast<std::byte>(received & 0xff));
    }
    ++received;
  }
  producer.join();
}

}  // namespace
}  // namespace catfish::msg

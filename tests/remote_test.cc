// Tests for the shared remote-memory access layer (src/remote): the
// transport adapters, the bounded read→validate→retry engine, the
// multi-issue batcher, fault injection, and the `remote.*` telemetry
// schema every consumer (R-tree client, B+-tree reader, cuckoo reader)
// reports through.
#include "remote/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "remote/fault.h"
#include "remote/transport.h"
#include "rtree/layout.h"
#include "rtree/node.h"
#include "telemetry/metrics.h"

namespace catfish::remote {
namespace {

constexpr size_t kChunk = rtree::kChunkSize;

/// A versioned in-process region of seqlock-formatted chunks.
struct Region {
  std::vector<std::byte> mem;

  explicit Region(size_t chunks) : mem(chunks * kChunk) {}

  std::span<std::byte> Chunk(ChunkId id) {
    return std::span(mem).subspan(id * kChunk, kChunk);
  }

  /// Seqlock-writes a payload of identical `fill` bytes into chunk `id`.
  void WriteFill(ChunkId id, std::byte fill) {
    std::vector<std::byte> payload(rtree::PayloadCapacity(kChunk), fill);
    auto chunk = Chunk(id);
    rtree::BeginWrite(chunk);
    rtree::ScatterPayload(chunk, payload);
    rtree::EndWrite(chunk);
  }
};

bool VersionsValid(std::span<const std::byte> image) {
  return rtree::ValidateVersions(image).has_value();
}

/// Gathers the payload and checks every byte is identical; the seqlock
/// contract says a version-validated image can never be a mix of two
/// writes.
bool PayloadUniform(std::span<const std::byte> image, std::byte* fill_out) {
  std::vector<std::byte> payload(rtree::PayloadCapacity(kChunk));
  rtree::GatherPayload(image, payload);
  for (const std::byte b : payload) {
    if (b != payload[0]) return false;
  }
  if (fill_out != nullptr) *fill_out = payload[0];
  return true;
}

TEST(RemoteEngineTest, FetchesAndValidatesLocalChunks) {
  Region region(4);
  for (ChunkId id = 0; id < 4; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(id + 1)});
  }
  LocalMemoryTransport transport(region.mem, kChunk);
  VersionedFetchEngine engine(&transport, "test");

  std::vector<std::byte> buf(kChunk);
  for (ChunkId id = 0; id < 4; ++id) {
    ASSERT_EQ(engine.FetchOne(id, buf, VersionsValid), FetchStatus::kOk);
    std::byte fill{};
    ASSERT_TRUE(PayloadUniform(buf, &fill));
    EXPECT_EQ(fill, std::byte{static_cast<uint8_t>(id + 1)});
  }
  EXPECT_EQ(engine.stats().reads, 4u);
  EXPECT_EQ(engine.stats().version_retries, 0u);
  EXPECT_EQ(engine.stats().retry_exhausted, 0u);
}

TEST(RemoteEngineTest, MultiIssueDeliversEveryItemOnce) {
  Region region(8);
  for (ChunkId id = 0; id < 8; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(0x10 + id)});
  }
  LocalMemoryTransport transport(region.mem, kChunk);
  VersionedFetchEngine engine(&transport, "test");

  std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(kChunk));
  std::vector<VersionedFetchEngine::Request> reqs(8);
  for (size_t i = 0; i < 8; ++i) reqs[i] = {static_cast<ChunkId>(i), bufs[i]};

  std::vector<int> seen(8, 0);
  const auto st = engine.FetchMany(
      reqs, [&](size_t i, std::span<const std::byte> image) {
        if (!VersionsValid(image)) return false;
        ++seen[i];
        return true;
      });
  ASSERT_EQ(st, FetchStatus::kOk);
  for (const int s : seen) EXPECT_EQ(s, 1);
  EXPECT_EQ(engine.stats().reads, 8u);
  EXPECT_EQ(engine.stats().batches, 1u);
}

TEST(RemoteEngineTest, PermanentlyTornChunkExhaustsBoundedly) {
  telemetry::Registry::Global().Reset();
  Region region(2);
  region.WriteFill(1, std::byte{0xaa});
  rtree::BeginWrite(region.Chunk(1));  // never ended: versions stay odd

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.spin_attempts = 2;
  policy.backoff_base_us = 1;
  policy.backoff_cap_us = 8;
  LocalMemoryTransport transport(region.mem, kChunk);
  VersionedFetchEngine engine(&transport, "test", policy);

  std::vector<std::byte> buf(kChunk);
  // Exhaustion is a status, not a throw or a hang — and it is exact:
  // one fetch per allowed attempt, no hot spin beyond the bound.
  EXPECT_EQ(engine.FetchOne(1, buf, VersionsValid),
            FetchStatus::kRetriesExhausted);
  EXPECT_EQ(engine.stats().reads, 8u);
  EXPECT_EQ(engine.stats().version_retries, 8u);
  EXPECT_EQ(engine.stats().retry_exhausted, 1u);
  EXPECT_GE(engine.stats().backoff_waits, 1u);

  // The call site can recover: the same engine keeps serving fetches.
  EXPECT_EQ(engine.FetchOne(0, buf, VersionsValid), FetchStatus::kOk);

#if CATFISH_TELEMETRY_ENABLED
  const auto snap = telemetry::Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counter("remote.version_retry_exhausted"), 1u);
  EXPECT_EQ(snap.counter("remote.test.reads"), 9u);
  EXPECT_EQ(snap.counter("remote.test.version_retries"), 8u);
  EXPECT_EQ(snap.counter("remote.reads"), 9u);
#endif
}

TEST(RemoteEngineTest, OutOfRangeChunkIsTransportError) {
  Region region(2);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_cap_us = 1;
  LocalMemoryTransport transport(region.mem, kChunk);
  VersionedFetchEngine engine(&transport, "test", policy);

  std::vector<std::byte> buf(kChunk);
  EXPECT_EQ(engine.FetchOne(100, buf, VersionsValid),
            FetchStatus::kTransportError);
  EXPECT_EQ(engine.stats().transport_errors, 3u);
  EXPECT_EQ(engine.stats().retry_exhausted, 0u);  // not a version problem
}

TEST(RemoteFaultTest, DroppedFetchesFailCleanlyWithinBounds) {
  Region region(2);
  region.WriteFill(0, std::byte{0x11});
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);
  faulty.drop.first = 1'000'000;  // every fetch fails on the wire

  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_cap_us = 1;
  VersionedFetchEngine engine(&faulty, "test", policy);

  std::vector<std::byte> buf(kChunk);
  EXPECT_EQ(engine.FetchOne(0, buf, VersionsValid),
            FetchStatus::kTransportError);
  // Bounded: exactly max_attempts posts reached the transport, not 1e6.
  EXPECT_EQ(faulty.fetches_posted(), 5u);
  EXPECT_EQ(engine.stats().transport_errors, 5u);
}

TEST(RemoteFaultTest, TransientTearsAreRetriedAndRecovered) {
  telemetry::Registry::Global().Reset();
  Region region(2);
  region.WriteFill(0, std::byte{0x42});
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);
  faulty.tear.first = 3;  // fetches 0,1,2 torn; fetch 3 clean

  VersionedFetchEngine engine(&faulty, "test");
  std::vector<std::byte> buf(kChunk);
  ASSERT_EQ(engine.FetchOne(0, buf, VersionsValid), FetchStatus::kOk);
  std::byte fill{};
  ASSERT_TRUE(PayloadUniform(buf, &fill));
  EXPECT_EQ(fill, std::byte{0x42});
  EXPECT_EQ(engine.stats().reads, 4u);
  EXPECT_EQ(engine.stats().version_retries, 3u);
  EXPECT_EQ(engine.stats().retry_exhausted, 0u);

#if CATFISH_TELEMETRY_ENABLED
  const auto snap = telemetry::Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counter("remote.test.version_retries"), 3u);
  EXPECT_EQ(snap.counter("remote.version_retry_exhausted"), 0u);
#endif
}

TEST(RemoteFaultTest, DelayedCompletionsAreAwaited) {
  Region region(4);
  for (ChunkId id = 0; id < 4; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(id)});
  }
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);
  faulty.delay_polls = 7;

  VersionedFetchEngine engine(&faulty, "test");
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(kChunk));
  std::vector<VersionedFetchEngine::Request> reqs(4);
  for (size_t i = 0; i < 4; ++i) reqs[i] = {static_cast<ChunkId>(i), bufs[i]};
  EXPECT_EQ(engine.FetchMany(reqs,
                             [](size_t, std::span<const std::byte> image) {
                               return VersionsValid(image);
                             }),
            FetchStatus::kOk);
  EXPECT_EQ(engine.stats().reads, 4u);
}

TEST(RemoteFaultTest, DelayLineHoldsExactlyDelayPolls) {
  // Pin the delay-line semantics: a completion surfaced by poll P is
  // delivered by poll P + delay_polls, not P + delay_polls - 1. (The
  // original implementation aged entries in the same poll that enqueued
  // them, shipping everything one poll early.)
  Region region(1);
  region.WriteFill(0, std::byte{0x55});
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);
  faulty.delay_polls = 2;

  std::vector<std::byte> buf(kChunk);
  ASSERT_TRUE(faulty.PostFetch(/*token=*/42, 0, buf));

  FetchCompletion out[4];
  // Poll 1 surfaces the inner completion into the delay line; polls 1
  // and 2 must deliver nothing.
  EXPECT_EQ(faulty.PollCompletions(out), 0u);
  EXPECT_EQ(faulty.PollCompletions(out), 0u);
  // Poll 3 — two polls after surfacing — delivers it intact.
  ASSERT_EQ(faulty.PollCompletions(out), 1u);
  EXPECT_EQ(out[0].token, 42u);
  EXPECT_TRUE(out[0].ok);

  // Dropped fetches ride the same line: enqueued at post time, first
  // seen by the next poll, delivered two further polls later.
  faulty.drop.first = 1'000'000;  // every subsequent fetch drops
  ASSERT_TRUE(faulty.PostFetch(/*token=*/43, 0, buf));
  EXPECT_EQ(faulty.PollCompletions(out), 0u);  // first sighting
  EXPECT_EQ(faulty.PollCompletions(out), 0u);
  ASSERT_EQ(faulty.PollCompletions(out), 1u);
  EXPECT_EQ(out[0].token, 43u);
  EXPECT_FALSE(out[0].ok);
}

TEST(RemoteFaultTest, ZeroDelayDeliversOnFirstPoll) {
  Region region(1);
  region.WriteFill(0, std::byte{0x66});
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);

  std::vector<std::byte> buf(kChunk);
  ASSERT_TRUE(faulty.PostFetch(/*token=*/7, 0, buf));
  FetchCompletion out[4];
  ASSERT_EQ(faulty.PollCompletions(out), 1u);
  EXPECT_EQ(out[0].token, 7u);

  // A dropped fetch with zero delay also fails on the very next poll.
  faulty.drop.first = 1'000'000;
  ASSERT_TRUE(faulty.PostFetch(/*token=*/8, 0, buf));
  ASSERT_EQ(faulty.PollCompletions(out), 1u);
  EXPECT_EQ(out[0].token, 8u);
  EXPECT_FALSE(out[0].ok);
}

TEST(RemoteFaultTest, MultiIssueRetearsOnlyAffectedItems) {
  Region region(4);
  for (ChunkId id = 0; id < 4; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(id)});
  }
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);
  faulty.tear.first = 2;  // the round's first two posts deliver torn

  VersionedFetchEngine engine(&faulty, "test");
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(kChunk));
  std::vector<VersionedFetchEngine::Request> reqs(4);
  for (size_t i = 0; i < 4; ++i) reqs[i] = {static_cast<ChunkId>(i), bufs[i]};
  EXPECT_EQ(engine.FetchMany(reqs,
                             [](size_t, std::span<const std::byte> image) {
                               return VersionsValid(image);
                             }),
            FetchStatus::kOk);
  // 4 initial multi-issued READs + one re-fetch per torn item.
  EXPECT_EQ(engine.stats().reads, 6u);
  EXPECT_EQ(engine.stats().version_retries, 2u);
}

TEST(RemoteEngineTest, TornReadHammer) {
  // The shared engine against a live seqlock writer: validated images
  // must never mix two writes, and bounded retries must always resolve
  // (the writer never holds a chunk torn for long).
  Region region(2);
  region.WriteFill(1, std::byte{1});

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint8_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      region.WriteFill(1, std::byte{v});
      v = v == 250 ? 1 : static_cast<uint8_t>(v + 1);
    }
  });

  LocalMemoryTransport transport(region.mem, kChunk);
  VersionedFetchEngine engine(&transport, "test");
  std::vector<std::byte> buf(kChunk);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(engine.FetchOne(1, buf, VersionsValid), FetchStatus::kOk);
    std::byte fill{};
    ASSERT_TRUE(PayloadUniform(buf, &fill)) << "torn image passed validation";
    ASSERT_NE(fill, std::byte{0});
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(engine.stats().retry_exhausted, 0u);
}

TEST(RemoteEngineTest, PerEngineMetricsAggregate) {
  telemetry::Registry::Global().Reset();
  Region region(2);
  region.WriteFill(0, std::byte{0x01});
  LocalMemoryTransport transport(region.mem, kChunk);
  VersionedFetchEngine a(&transport, "alpha");
  VersionedFetchEngine b(&transport, "beta");

  std::vector<std::byte> buf(kChunk);
  ASSERT_EQ(a.FetchOne(0, buf, VersionsValid), FetchStatus::kOk);
  ASSERT_EQ(b.FetchOne(0, buf, VersionsValid), FetchStatus::kOk);
  ASSERT_EQ(b.FetchOne(0, buf, VersionsValid), FetchStatus::kOk);

#if CATFISH_TELEMETRY_ENABLED
  const auto snap = telemetry::Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counter("remote.alpha.reads"), 1u);
  EXPECT_EQ(snap.counter("remote.beta.reads"), 2u);
  EXPECT_EQ(snap.counter("remote.reads"), 3u);  // aggregate spans engines
#endif
}

/// Wraps another transport and counts issue doorbells: every
/// PostFetchBatch call is one doorbell regardless of chain length.
struct CountingTransport final : FetchTransport {
  FetchTransport* inner;
  size_t single_posts = 0;
  size_t batch_posts = 0;
  std::vector<size_t> batch_sizes;

  explicit CountingTransport(FetchTransport* t) : inner(t) {}
  bool PostFetch(uint64_t token, ChunkId id,
                 std::span<std::byte> dst) override {
    ++single_posts;
    return inner->PostFetch(token, id, dst);
  }
  void PostFetchBatch(std::span<const FetchRequest> reqs,
                      std::vector<size_t>& rejected) override {
    ++batch_posts;
    batch_sizes.push_back(reqs.size());
    inner->PostFetchBatch(reqs, rejected);
  }
  size_t PollCompletions(std::span<FetchCompletion> out) override {
    return inner->PollCompletions(out);
  }
};

TEST(MultiIssueBatcherTest, WaitAnyWithNothingOutstandingReturnsZero) {
  // Regression: WaitAny used to be callable only with work in flight;
  // an empty batcher must return 0 immediately instead of spinning on
  // a poll that can never deliver.
  Region region(2);
  LocalMemoryTransport transport(region.mem, kChunk);
  MultiIssueBatcher batch(&transport);

  FetchCompletion out[4];
  EXPECT_EQ(batch.WaitAny(out), 0u);
  EXPECT_EQ(batch.WaitAny(out), 0u);  // still empty, still instant

  // An empty output span also returns 0 — but it still flushes staged
  // work so the caller can drain it with a real span afterwards.
  std::vector<std::byte> buf(kChunk);
  batch.Stage(7, 0, buf);
  EXPECT_EQ(batch.WaitAny({}), 0u);
  EXPECT_EQ(batch.staged(), 0u);
  EXPECT_EQ(batch.outstanding(), 1u);
  ASSERT_EQ(batch.WaitAny(out), 1u);
  EXPECT_EQ(out[0].token, 7u);
  EXPECT_EQ(batch.WaitAny(out), 0u);
}

TEST(MultiIssueBatcherTest, StageFlushRingsOneDoorbellPerRound) {
  Region region(4);
  for (ChunkId id = 0; id < 4; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(id + 1)});
  }
  LocalMemoryTransport inner(region.mem, kChunk);
  CountingTransport counting(&inner);
  MultiIssueBatcher batch(&counting);

  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(kChunk));
  for (size_t i = 0; i < 4; ++i) {
    batch.Stage(i, static_cast<ChunkId>(i), bufs[i]);
  }
  EXPECT_EQ(batch.staged(), 4u);
  EXPECT_EQ(counting.batch_posts, 0u);  // staging never touches the wire

  EXPECT_EQ(batch.Flush(), 4u);
  EXPECT_EQ(counting.batch_posts, 1u);
  ASSERT_EQ(counting.batch_sizes.size(), 1u);
  EXPECT_EQ(counting.batch_sizes[0], 4u);
  EXPECT_EQ(counting.single_posts, 0u);  // no per-WR posts on the wrapper
  EXPECT_EQ(batch.outstanding(), 4u);

  size_t drained = 0;
  FetchCompletion out[4];
  while (drained < 4) {
    const size_t got = batch.WaitAny(out);
    ASSERT_GT(got, 0u);
    for (size_t i = 0; i < got; ++i) EXPECT_TRUE(out[i].ok);
    drained += got;
  }
  EXPECT_EQ(batch.outstanding(), 0u);
}

TEST(RemoteEngineTest, FetchManyCountsDoorbellsPerIssueRound) {
  Region region(6);
  for (ChunkId id = 0; id < 6; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(id + 1)});
  }
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);
  faulty.tear.first = 2;  // the round's first two images come back torn
  CountingTransport counting(&faulty);
  VersionedFetchEngine engine(&counting, "test");

  std::vector<std::vector<std::byte>> bufs(6, std::vector<std::byte>(kChunk));
  std::vector<VersionedFetchEngine::Request> reqs(6);
  for (size_t i = 0; i < 6; ++i) reqs[i] = {static_cast<ChunkId>(i), bufs[i]};
  ASSERT_EQ(engine.FetchMany(reqs,
                             [](size_t, std::span<const std::byte> image) {
                               return VersionsValid(image);
                             }),
            FetchStatus::kOk);

  // One doorbell for the 6-WR initial round, one for the 2-WR retry
  // wave — not one per READ (the whole point of Stage/Flush).
  EXPECT_EQ(engine.stats().reads, 8u);
  EXPECT_EQ(engine.stats().doorbells, 2u);
  EXPECT_EQ(counting.batch_posts, 2u);
  ASSERT_EQ(counting.batch_sizes.size(), 2u);
  EXPECT_EQ(counting.batch_sizes[0], 6u);
  EXPECT_EQ(counting.batch_sizes[1], 2u);
  // Coalesced reaping: strictly fewer reap passes than completions
  // would cost unbatched is not guaranteed on a synchronous transport,
  // but the count must be recorded and bounded by the read count.
  EXPECT_GE(engine.stats().polls, 1u);
  EXPECT_LE(engine.stats().polls, engine.stats().reads);
}

TEST(ScratchPoolTest, ReusesSlabAndCountsOverflow) {
  ScratchPool pool(64, 2);
  EXPECT_EQ(pool.buf_bytes(), 64u);
  EXPECT_EQ(pool.capacity(), 2u);

  const auto a = pool.Acquire();
  const auto b = pool.Acquire();
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.overflow_allocs(), 0u);

  // Pool exhausted: Acquire still succeeds via a counted heap overflow.
  const auto c = pool.Acquire();
  EXPECT_EQ(c.size(), 64u);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.high_water(), 3u);

  pool.Release(c);
  pool.Release(b);
  pool.Release(a);
  EXPECT_EQ(pool.in_use(), 0u);

  // LIFO reuse: the freshest slab buffer comes back first (warm cache),
  // and no further overflow happens at or under capacity.
  const auto d = pool.Acquire();
  EXPECT_EQ(d.data(), a.data());
  EXPECT_EQ(pool.overflow_allocs(), 1u);
  pool.Release(d);
  EXPECT_EQ(pool.high_water(), 3u);
}

TEST(RemoteEngineTest, FetchChunksReleasesScratchOnEveryExitPath) {
  Region region(4);
  for (ChunkId id = 0; id < 4; ++id) {
    region.WriteFill(id, std::byte{static_cast<uint8_t>(id + 1)});
  }
  LocalMemoryTransport inner(region.mem, kChunk);
  FaultInjectingTransport faulty(&inner);

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_cap_us = 1;
  VersionedFetchEngine engine(&faulty, "test", policy);

  // Without a pool, FetchChunks has nowhere to put images: a clean
  // transport error, not a crash.
  const ChunkId all[] = {0, 1, 2, 3};
  EXPECT_EQ(engine.FetchChunks(all,
                               [](size_t, std::span<const std::byte>) {
                                 return true;
                               }),
            FetchStatus::kTransportError);

  // Capacity below the round width forces the overflow path too.
  ScratchPool& pool = engine.EnableScratch(kChunk, 2);

  // Exit path 1: success.
  size_t validated = 0;
  ASSERT_EQ(engine.FetchChunks(all,
                               [&](size_t, std::span<const std::byte> image) {
                                 if (!VersionsValid(image)) return false;
                                 ++validated;
                                 return true;
                               }),
            FetchStatus::kOk);
  EXPECT_EQ(validated, 4u);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_GE(pool.overflow_allocs(), 1u);  // width 4 > capacity 2

  // Exit path 2: retry exhaustion — chunk 1 stays torn forever.
  rtree::BeginWrite(region.Chunk(1));
  EXPECT_EQ(engine.FetchChunks(all,
                               [](size_t, std::span<const std::byte> image) {
                                 return VersionsValid(image);
                               }),
            FetchStatus::kRetriesExhausted);
  EXPECT_EQ(pool.in_use(), 0u);
  rtree::EndWrite(region.Chunk(1));

  // Exit path 3: transport error — every fetch drops on the wire.
  faulty.drop.first = 1'000'000;
  EXPECT_EQ(engine.FetchChunks(all,
                               [](size_t, std::span<const std::byte> image) {
                                 return VersionsValid(image);
                               }),
            FetchStatus::kTransportError);
  EXPECT_EQ(pool.in_use(), 0u);
  faulty.drop = {};

  // Exit path 4: a throwing validate must not leak buffers either.
  EXPECT_THROW(engine.FetchChunks(all,
                                  [](size_t, std::span<const std::byte>)
                                      -> bool {
                                    throw std::runtime_error("decode bug");
                                  }),
               std::runtime_error);
  EXPECT_EQ(pool.in_use(), 0u);

  // Exit path 5: re-enabling (the reconnect path) swaps pools; the new
  // pool starts empty and serves fetches.
  ScratchPool& fresh = engine.EnableScratch(kChunk, 8);
  EXPECT_EQ(engine.scratch(), &fresh);
  EXPECT_EQ(fresh.in_use(), 0u);
  ASSERT_EQ(engine.FetchChunks(all,
                               [](size_t, std::span<const std::byte> image) {
                                 return VersionsValid(image);
                               }),
            FetchStatus::kOk);
  EXPECT_EQ(fresh.in_use(), 0u);
  EXPECT_EQ(fresh.overflow_allocs(), 0u);  // capacity 8 covers width 4
}

TEST(RemoteTransportTest, CallbackTransportCompletesSynchronously) {
  Region region(2);
  region.WriteFill(1, std::byte{0x77});
  size_t calls = 0;
  CallbackTransport transport([&](ChunkId id, std::span<std::byte> dst) {
    ++calls;
    const auto chunk = region.Chunk(id);
    std::copy(chunk.begin(), chunk.end(), dst.begin());
  });

  VersionedFetchEngine engine(&transport, "test");
  std::vector<std::byte> buf(kChunk);
  ASSERT_EQ(engine.FetchOne(1, buf, VersionsValid), FetchStatus::kOk);
  EXPECT_EQ(calls, 1u);
  std::byte fill{};
  ASSERT_TRUE(PayloadUniform(buf, &fill));
  EXPECT_EQ(fill, std::byte{0x77});
}

}  // namespace
}  // namespace catfish::remote

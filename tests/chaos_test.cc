// Chaos suite: scripted fault schedules against the full client/server
// stack — server restart mid-burst, partition during offload, flaky
// link under adaptive switching. Each test asserts the three recovery
// invariants: bounded recovery time (no hangs), typed failures while
// degraded, and post-recovery results that match a direct tree scan.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "telemetry/events.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::EventRecorder::Global().Clear();
    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 13);
    Xoshiro256 rng(11);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 800; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      oracle_.Insert(r, i);
    }
    tree_ = std::make_unique<rtree::RStarTree>(rtree::BulkLoad(*arena_, items));
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    server_cfg_.heartbeat_interval_us = 1'000;
    server_node_ = fabric_->CreateNode("server");
    StartServer();
  }

  void TearDown() override { StopServer(); }

  void StartServer() {
    server_ = std::make_unique<RTreeServer>(server_node_, *tree_, server_cfg_);
    acceptor_ = std::make_unique<BootstrapAcceptor>(*server_, *fabric_);
  }

  void StopServer() {
    if (acceptor_) acceptor_->Stop();
    if (server_) server_->Stop();
    acceptor_.reset();
    server_.reset();
  }

  /// A full crash/reboot: old rkeys and QPNs die with the node; the new
  /// incarnation re-registers everything under a bumped generation.
  void RestartServer() {
    StopServer();
    server_node_ = fabric_->RestartNode("server");
    StartServer();
  }

  /// Tight intervals so watchdog escalation and recovery resolve in
  /// milliseconds; small retry backoff so flaky links are absorbed fast.
  static ClientConfig ChaosClientConfig() {
    ClientConfig cfg;
    cfg.adaptive.heartbeat_interval_us = 1'000;
    cfg.watchdog.enabled = true;
    cfg.watchdog.suspect_after = 5;
    cfg.watchdog.disconnect_after = 15;
    cfg.request_timeout_us = 2'000'000;
    cfg.remote_retry.max_attempts = 8;
    cfg.remote_retry.backoff_base_us = 1;
    cfg.remote_retry.backoff_cap_us = 50;
    return cfg;
  }

  /// Dials through the *current* acceptor, so a client created here can
  /// re-bootstrap against whatever incarnation is live at recovery time.
  std::unique_ptr<RTreeClient> Connect(const std::string& name,
                                       ClientConfig cfg) {
    auto node = fabric_->CreateNode(name);
    return ConnectViaBootstrap(
        [this] {
          if (!acceptor_) throw std::runtime_error("no acceptor");
          return acceptor_->Dial();
        },
        node, cfg);
  }

  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::shared_ptr<rdma::SimNode> server_node_;
  ServerConfig server_cfg_;
  std::unique_ptr<RTreeServer> server_;
  std::unique_ptr<BootstrapAcceptor> acceptor_;
  testutil::BruteForceIndex oracle_;
};

TEST_F(ChaosTest, ServerRestartMidBurstRecovers) {
  auto client = Connect("client-a", ChaosClientConfig());
  Xoshiro256 rng(21);

  // Warm burst against generation 1.
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
  }
  ASSERT_EQ(client->server_generation(), 1u);

  // Crash/reboot mid-burst: rkeys and QPNs from generation 1 are dead.
  RestartServer();

  // The client must notice (watchdog), re-bootstrap against generation
  // 2, and resume — bounded, not the 30s-timeout way.
  const geo::Rect probe{0.2, 0.2, 0.4, 0.4};
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          return Ids(client->SearchFast(probe)) == oracle_.Search(probe);
        } catch (const ClientError&) {
          return false;  // still degraded / reconnecting
        }
      },
      10s));
  const auto recovery = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(recovery, 10s);

  EXPECT_GE(client->stats().reconnects, 1u);
  EXPECT_EQ(client->server_generation(), 2u);
  EXPECT_EQ(client->conn_state(), ConnState::kConnected);

  // Post-recovery correctness on both paths.
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  }
  // Writes flow again through the new incarnation.
  EXPECT_TRUE(client->Insert(geo::Rect{0.95, 0.95, 0.951, 0.951}, 9001));
  EXPECT_TRUE(client->Delete(geo::Rect{0.95, 0.95, 0.951, 0.951}, 9001));

  // The flight recorder observed the failover: a watchdog escalation
  // followed by a reconnect.
  const auto events = telemetry::EventRecorder::Global().Drain();
  bool saw_trip = false, saw_reconnect = false;
  for (const auto& e : events) {
    if (e.type == telemetry::EventType::kWatchdogTrip && e.a > 0) {
      saw_trip = true;
    }
    if (e.type == telemetry::EventType::kReconnect) saw_reconnect = true;
  }
  EXPECT_TRUE(saw_trip);
  EXPECT_TRUE(saw_reconnect);
}

TEST_F(ChaosTest, PartitionDuringOffloadFailsTypedThenHeals) {
  auto client = Connect("client-b", ChaosClientConfig());
  Xoshiro256 rng(22);
  const auto q = RandomRect(rng, 0.06);
  ASSERT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));

  fabric_->faults().Partition("client-b", "server");

  // Offloaded reads now hit the dead link: they must fail with a typed
  // transport error after the (small) retry budget, never hang.
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client->SearchOffloaded(q);
    FAIL() << "expected a transport error under partition";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kTransportError);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);

  // Heartbeats are cut too, so the watchdog degrades the connection.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() != ConnState::kConnected;
  }));

  // Heal: heartbeats resume and de-escalate the watchdog without a
  // re-bootstrap — the server never died, so nothing needs rewiring.
  fabric_->faults().Heal("client-b", "server");
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() == ConnState::kConnected;
  }));
  EXPECT_EQ(client->stats().reconnects, 0u);
  EXPECT_EQ(client->server_generation(), 1u);

  EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
}

TEST_F(ChaosTest, FlakyLinkUnderAdaptiveSwitchingStaysCorrect) {
  auto cfg = ChaosClientConfig();
  cfg.mode = ClientMode::kAdaptive;
  auto client = Connect("client-c", cfg);

  // Every 9th op on the link vanishes; the engine's retry loop and the
  // server's send-retry loop must absorb all of it.
  fabric_->faults().SetDropPlan("client-c", "server",
                                rdma::FaultController::DropPlan{0, 9});

  Xoshiro256 rng(23);
  bool saw_fast = false, saw_offload = false;
  for (int i = 0; i < 150; ++i) {
    if (i == 30) server_->OverrideUtilization(1.0);  // push toward offload
    if (i == 90) server_->OverrideUtilization(0.1);  // pull back to fast
    const auto q = RandomRect(rng, 0.04);
    ASSERT_EQ(Ids(client->Search(q)), oracle_.Search(q)) << "op " << i;
    if (client->last_mode() == AccessMode::kFastMessaging) saw_fast = true;
    if (client->last_mode() == AccessMode::kRdmaOffloading) {
      saw_offload = true;
    }
    // Give the heartbeat thread room to advertise the new utilization.
    std::this_thread::sleep_for(200us);
  }

  EXPECT_TRUE(saw_fast);
  EXPECT_TRUE(saw_offload);
  EXPECT_GT(fabric_->faults().dropped_ops(), 0u);
  EXPECT_EQ(client->stats().reconnects, 0u);
  EXPECT_EQ(client->conn_state(), ConnState::kConnected);
}

TEST_F(ChaosTest, ScriptedFaultScheduleEndToEnd) {
  auto client = Connect("client-d", ChaosClientConfig());
  Xoshiro256 rng(24);

  const auto run_ops = [&](int n) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      const auto q = RandomRect(rng, 0.04);
      try {
        if (Ids(client->Search(q)) == oracle_.Search(q)) ++ok;
      } catch (const ClientError&) {
        // Degraded phases may fail typed; never hang, never garbage.
      }
    }
    return ok;
  };

  // Phase 1: flaky link — everything still succeeds via retries.
  fabric_->faults().SetDropPlan("client-d", "server",
                                rdma::FaultController::DropPlan{0, 7});
  EXPECT_EQ(run_ops(40), 40);
  fabric_->faults().ClearLink("client-d", "server");

  // Phase 2: partition until the watchdog trips, then heal.
  fabric_->faults().Partition("client-d", "server");
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() != ConnState::kConnected;
  }));
  fabric_->faults().Heal("client-d", "server");
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() == ConnState::kConnected;
  }));
  EXPECT_EQ(run_ops(20), 20);

  // Phase 3: full server restart; the client re-bootstraps on demand.
  RestartServer();
  const geo::Rect probe{0.3, 0.3, 0.5, 0.5};
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          return Ids(client->SearchFast(probe)) == oracle_.Search(probe);
        } catch (const ClientError&) {
          return false;
        }
      },
      10s));

  EXPECT_EQ(client->server_generation(), 2u);
  EXPECT_GE(client->stats().reconnects, 1u);
  EXPECT_EQ(run_ops(20), 20);

  // Recovery is observable and bounded in the flight recorder: the
  // kReconnect event carries the re-bootstrap duration in b.
  const auto events = telemetry::EventRecorder::Global().Drain();
  bool saw_reconnect = false;
  for (const auto& e : events) {
    if (e.type == telemetry::EventType::kReconnect) {
      saw_reconnect = true;
      EXPECT_LT(e.b, 10e6) << "re-bootstrap took " << e.b << "us";
    }
  }
  EXPECT_TRUE(saw_reconnect);
}

}  // namespace
}  // namespace catfish

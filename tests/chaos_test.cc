// Chaos suite: scripted fault schedules against the full client/server
// stack — server restart mid-burst, partition during offload, flaky
// link under adaptive switching. Each test asserts the three recovery
// invariants: bounded recovery time (no hangs), typed failures while
// degraded, and post-recovery results that match a direct tree scan.
//
// Server restarts are real crashes: RestartServer() destroys the arena
// and tree objects outright and the next incarnation rebuilds them from
// the durable stores (checkpoint + WAL replay), so every post-restart
// oracle comparison is a test of the recovery path, not of a tree that
// secretly survived. RestartServerKeepState() keeps the old volatile
// state for connectivity-only scenarios.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "catfish/bootstrap.h"
#include "catfish/client.h"
#include "catfish/server.h"
#include "durable/manager.h"
#include "rtree/bulk_load.h"
#include "telemetry/events.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::RandomRect;

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr size_t kArenaChunks = 1 << 13;

  static durable::DurabilityConfig DurableConfig() {
    durable::DurabilityConfig cfg;
    // Small enough that write bursts trigger real mid-test checkpoints.
    cfg.checkpoint_wal_bytes = 32 * 1024;
    return cfg;
  }

  void SetUp() override {
    telemetry::EventRecorder::Global().Clear();
    // "The disk": both stores outlive every server incarnation.
    wal_disk_ = std::make_shared<durable::MemLogStorage>();
    ckpt_disk_ = std::make_shared<durable::MemCheckpointStore>();

    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize,
                                                kArenaChunks);
    Xoshiro256 rng(11);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < 800; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      oracle_.Insert(r, i);
    }
    const auto loaded = rtree::BulkLoad(*arena_, items);
    // Bulk load bypasses the WAL, so seed the disk with an explicit
    // checkpoint of the loaded tree; recovery below then restores it —
    // the first incarnation already serves durably-backed state.
    durable::CheckpointMeta meta;
    meta.applied_lsn = 0;
    meta.tree_size = loaded.size();
    meta.tree_height = loaded.height();
    meta.write_epoch = loaded.write_epoch();
    ckpt_disk_->Write(durable::EncodeCheckpoint(
        *arena_, durable::DedupTable(DurableConfig().dedup_window), meta));

    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    server_cfg_.heartbeat_interval_us = 1'000;
    server_node_ = fabric_->CreateNode("server");
    RecoverState();
    StartServer();
  }

  void TearDown() override { StopServer(); }

  /// Rebuilds arena + tree from the durable stores, exactly as a fresh
  /// server process would. Destroys whatever volatile state existed.
  void RecoverState() {
    tree_.reset();
    arena_ =
        std::make_unique<rtree::NodeArena>(rtree::kChunkSize, kArenaChunks);
    durability_ = std::make_unique<durable::DurabilityManager>(
        wal_disk_, ckpt_disk_, DurableConfig());
    tree_ = std::make_unique<rtree::RStarTree>(durability_->Recover(*arena_));
  }

  void StartServer() {
    const std::scoped_lock lock(boot_mu_);
    server_cfg_.durability = durability_.get();
    server_ = std::make_unique<RTreeServer>(server_node_, *tree_, server_cfg_);
    acceptor_ = std::make_unique<BootstrapAcceptor>(*server_, *fabric_);
  }

  void StopServer() {
    std::unique_ptr<BootstrapAcceptor> acceptor;
    std::unique_ptr<RTreeServer> server;
    {
      const std::scoped_lock lock(boot_mu_);
      acceptor = std::move(acceptor_);
      server = std::move(server_);
    }
    if (acceptor) acceptor->Stop();
    if (server) server->Stop();
  }

  /// A full crash/reboot: old rkeys and QPNs die with the node, and the
  /// volatile arena/tree die with the process image — the new
  /// incarnation recovers from checkpoint + WAL before serving.
  void RestartServer() {
    StopServer();
    RecoverState();
    server_node_ = fabric_->RestartNode("server");
    StartServer();
  }

  /// Reboot that keeps the in-memory tree (connectivity-only fault: the
  /// fabric identity changes but no state was lost).
  void RestartServerKeepState() {
    StopServer();
    server_node_ = fabric_->RestartNode("server");
    StartServer();
  }

  /// Tight intervals so watchdog escalation and recovery resolve in
  /// milliseconds; small retry backoff so flaky links are absorbed fast.
  static ClientConfig ChaosClientConfig() {
    ClientConfig cfg;
    cfg.adaptive.heartbeat_interval_us = 1'000;
    cfg.watchdog.enabled = true;
    cfg.watchdog.suspect_after = 5;
    cfg.watchdog.disconnect_after = 15;
    cfg.request_timeout_us = 2'000'000;
    cfg.remote_retry.max_attempts = 8;
    cfg.remote_retry.backoff_base_us = 1;
    cfg.remote_retry.backoff_cap_us = 50;
    return cfg;
  }

  /// Dials through the *current* acceptor, so a client created here can
  /// re-bootstrap against whatever incarnation is live at recovery time.
  /// Safe to call from helper threads concurrently with a restart.
  std::unique_ptr<RTreeClient> Connect(const std::string& name,
                                       ClientConfig cfg) {
    auto node = fabric_->CreateNode(name);
    return ConnectViaBootstrap(
        [this] {
          const std::scoped_lock lock(boot_mu_);
          if (!acceptor_) throw std::runtime_error("no acceptor");
          return acceptor_->Dial();
        },
        node, cfg);
  }

  std::shared_ptr<durable::MemLogStorage> wal_disk_;
  std::shared_ptr<durable::MemCheckpointStore> ckpt_disk_;
  std::unique_ptr<durable::DurabilityManager> durability_;
  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::shared_ptr<rdma::SimNode> server_node_;
  ServerConfig server_cfg_;
  std::mutex boot_mu_;  ///< guards server_/acceptor_ vs dialing threads
  std::unique_ptr<RTreeServer> server_;
  std::unique_ptr<BootstrapAcceptor> acceptor_;
  testutil::BruteForceIndex oracle_;
};

TEST_F(ChaosTest, ServerRestartMidBurstRecovers) {
  auto client = Connect("client-a", ChaosClientConfig());
  Xoshiro256 rng(21);

  // Warm burst against generation 1.
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
  }
  ASSERT_EQ(client->server_generation(), 1u);

  // Crash/reboot mid-burst: rkeys and QPNs from generation 1 are dead.
  RestartServer();

  // The client must notice (watchdog), re-bootstrap against generation
  // 2, and resume — bounded, not the 30s-timeout way.
  const geo::Rect probe{0.2, 0.2, 0.4, 0.4};
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          return Ids(client->SearchFast(probe)) == oracle_.Search(probe);
        } catch (const ClientError&) {
          return false;  // still degraded / reconnecting
        }
      },
      10s));
  const auto recovery = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(recovery, 10s);

  EXPECT_GE(client->stats().reconnects, 1u);
  EXPECT_EQ(client->server_generation(), 2u);
  EXPECT_EQ(client->conn_state(), ConnState::kConnected);

  // Post-recovery correctness on both paths.
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  }
  // Writes flow again through the new incarnation.
  EXPECT_TRUE(client->Insert(geo::Rect{0.95, 0.95, 0.951, 0.951}, 9001));
  EXPECT_TRUE(client->Delete(geo::Rect{0.95, 0.95, 0.951, 0.951}, 9001));

  // The flight recorder observed the failover: a watchdog escalation
  // followed by a reconnect.
#if CATFISH_TELEMETRY_ENABLED
  const auto events = telemetry::EventRecorder::Global().Drain();
  bool saw_trip = false, saw_reconnect = false;
  for (const auto& e : events) {
    if (e.type == telemetry::EventType::kWatchdogTrip && e.a > 0) {
      saw_trip = true;
    }
    if (e.type == telemetry::EventType::kReconnect) saw_reconnect = true;
  }
  EXPECT_TRUE(saw_trip);
  EXPECT_TRUE(saw_reconnect);
#endif
}

TEST_F(ChaosTest, DurableRestartRecoversAckedWrites) {
  auto cfg = ChaosClientConfig();
  // A checkpoint quiesces writers and the monitor alike; a write (and
  // the heartbeats) can stall past the watchdog budget while it runs.
  // The retry path absorbs that — resends dedup server-side.
  cfg.write_attempts = 50;
  auto client = Connect("client-w", cfg);
  Xoshiro256 rng(31);

  // A write burst against the durable path: enough bytes to trip the
  // 32 KB checkpoint threshold at least once mid-burst, plus a tail of
  // writes that only the WAL has seen at crash time.
  for (uint64_t i = 0; i < 600; ++i) {
    const auto r = RandomRect(rng, 0.01);
    ASSERT_TRUE(client->Insert(r, 10'000 + i));
    oracle_.Insert(r, 10'000 + i);
    if (i % 7 == 0) {
      const auto q = RandomRect(rng, 0.02);
      for (const uint64_t id : oracle_.Search(q)) {
        if (id >= 10'000) {
          // Delete an entry we inserted earlier — exercises the delete
          // record path through WAL and replay.
          const auto rect = oracle_.RectOf(id);
          ASSERT_TRUE(client->Delete(rect, id));
          oracle_.Delete(rect, id);
          break;
        }
      }
    }
  }
  // The last acked write before the crash must survive recovery.
  const geo::Rect last{0.91, 0.91, 0.912, 0.912};
  ASSERT_TRUE(client->Insert(last, 99'999));
  oracle_.Insert(last, 99'999);

  const uint64_t checkpoints_before = ckpt_disk_->writes();
  EXPECT_GE(checkpoints_before, 2u)  // the seed write + >=1 triggered
      << "write burst never tripped the checkpoint threshold";

  // Crash. The arena and tree objects are destroyed; the only way the
  // next incarnation can answer correctly is checkpoint + WAL replay.
  RestartServer();
  const auto& report = durability_->recovery_report();
  EXPECT_TRUE(report.checkpoint_loaded);

  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          return Ids(client->SearchFast(last)) == oracle_.Search(last);
        } catch (const ClientError&) {
          return false;
        }
      },
      10s));

  // Full-domain scan equality: every acked write (including the final
  // one) is present exactly once, nothing was lost or doubled.
  const geo::Rect all{0.0, 0.0, 1.0, 1.0};
  EXPECT_EQ(Ids(client->SearchFast(all)), oracle_.Search(all));
  EXPECT_EQ(Ids(client->SearchOffloaded(all)), oracle_.Search(all));

  // Recovery telemetry: the flight recorder saw the replay.
#if CATFISH_TELEMETRY_ENABLED
  const auto events = telemetry::EventRecorder::Global().Drain();
  bool saw_replay = false;
  for (const auto& e : events) {
    if (e.type == telemetry::EventType::kReplay) saw_replay = true;
  }
  EXPECT_TRUE(saw_replay);
#endif
}

TEST_F(ChaosTest, ExactlyOnceWritesAcrossCrashMidBurst) {
  auto cfg = ChaosClientConfig();
  // Generous retry budget: the writer must ride out the whole restart
  // window (watchdog trip + failed re-dials while the acceptor is down)
  // by resending the same (client_gen, req_id), never a fresh req_id.
  cfg.write_attempts = 500;
  auto client = Connect("client-x", cfg);

  constexpr uint64_t kWrites = 300;
  std::atomic<uint64_t> acked{0};
  std::thread writer([&] {
    Xoshiro256 rng(41);
    for (uint64_t i = 0; i < kWrites; ++i) {
      const auto r = RandomRect(rng, 0.01);
      ASSERT_TRUE(client->Insert(r, 50'000 + i));
      acked.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Crash the server mid-burst, while writes are in flight.
  ASSERT_TRUE(testutil::WaitUntil(
      [&] { return acked.load(std::memory_order_relaxed) >= 50; }, 30s));
  RestartServer();
  writer.join();
  ASSERT_EQ(acked.load(), kWrites);

  // Every insert was acked exactly once; now prove each was *applied*
  // exactly once: a retried write that was already applied before the
  // crash must have been deduped (from the replayed WAL), not re-run.
  const geo::Rect all{0.0, 0.0, 1.0, 1.0};
  std::vector<uint64_t> ids;
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          ids = Ids(client->SearchFast(all));
          return true;
        } catch (const ClientError&) {
          return false;
        }
      },
      10s));
  uint64_t mine = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= 50'000) {
      ++mine;
      ASSERT_TRUE(i + 1 == ids.size() || ids[i + 1] != ids[i])
          << "write " << ids[i] << " applied twice";
    }
  }
  EXPECT_EQ(mine, kWrites);
}

TEST_F(ChaosTest, KeepStateRestartIsConnectivityOnly) {
  auto client = Connect("client-k", ChaosClientConfig());
  Xoshiro256 rng(51);
  const uint64_t wal_before = wal_disk_->sync_count();

  // Reboot the fabric identity but keep the volatile tree: the client
  // must re-bootstrap, and no recovery (checkpoint load / replay) may
  // run — this is the path for connectivity-only faults.
  RestartServerKeepState();
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          const auto q = RandomRect(rng, 0.05);
          return Ids(client->SearchFast(q)) == oracle_.Search(q);
        } catch (const ClientError&) {
          return false;
        }
      },
      10s));
  EXPECT_EQ(client->server_generation(), 2u);
  EXPECT_EQ(durability_->recovery_report().records_replayed, 0u);
  EXPECT_EQ(wal_disk_->sync_count(), wal_before);

  for (int i = 0; i < 10; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
  }
}

TEST_F(ChaosTest, PartitionDuringOffloadFailsTypedThenHeals) {
  auto client = Connect("client-b", ChaosClientConfig());
  Xoshiro256 rng(22);
  const auto q = RandomRect(rng, 0.06);
  ASSERT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));

  fabric_->faults().Partition("client-b", "server");

  // Offloaded reads now hit the dead link: they must fail with a typed
  // transport error after the (small) retry budget, never hang.
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client->SearchOffloaded(q);
    FAIL() << "expected a transport error under partition";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.status(), ClientStatus::kTransportError);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);

  // Heartbeats are cut too, so the watchdog degrades the connection.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() != ConnState::kConnected;
  }));

  // Heal: heartbeats resume and de-escalate the watchdog without a
  // re-bootstrap — the server never died, so nothing needs rewiring.
  fabric_->faults().Heal("client-b", "server");
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() == ConnState::kConnected;
  }));
  EXPECT_EQ(client->stats().reconnects, 0u);
  EXPECT_EQ(client->server_generation(), 1u);

  EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
}

TEST_F(ChaosTest, FlakyLinkUnderAdaptiveSwitchingStaysCorrect) {
  auto cfg = ChaosClientConfig();
  cfg.mode = ClientMode::kAdaptive;
  auto client = Connect("client-c", cfg);

  // Every 9th op on the link vanishes; the engine's retry loop and the
  // server's send-retry loop must absorb all of it.
  fabric_->faults().SetDropPlan("client-c", "server",
                                rdma::FaultController::DropPlan{0, 9});

  Xoshiro256 rng(23);
  bool saw_fast = false, saw_offload = false;
  for (int i = 0; i < 150; ++i) {
    if (i == 30) server_->OverrideUtilization(1.0);  // push toward offload
    if (i == 90) server_->OverrideUtilization(0.1);  // pull back to fast
    const auto q = RandomRect(rng, 0.04);
    ASSERT_EQ(Ids(client->Search(q)), oracle_.Search(q)) << "op " << i;
    if (client->last_mode() == AccessMode::kFastMessaging) saw_fast = true;
    if (client->last_mode() == AccessMode::kRdmaOffloading) {
      saw_offload = true;
    }
    // Give the heartbeat thread room to advertise the new utilization.
    std::this_thread::sleep_for(200us);
  }

  EXPECT_TRUE(saw_fast);
  EXPECT_TRUE(saw_offload);
  EXPECT_GT(fabric_->faults().dropped_ops(), 0u);
  EXPECT_EQ(client->stats().reconnects, 0u);
  EXPECT_EQ(client->conn_state(), ConnState::kConnected);
}

TEST_F(ChaosTest, ScriptedFaultScheduleEndToEnd) {
  auto client = Connect("client-d", ChaosClientConfig());
  Xoshiro256 rng(24);

  const auto run_ops = [&](int n) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      const auto q = RandomRect(rng, 0.04);
      try {
        if (Ids(client->Search(q)) == oracle_.Search(q)) ++ok;
      } catch (const ClientError&) {
        // Degraded phases may fail typed; never hang, never garbage.
      }
    }
    return ok;
  };

  // Phase 1: flaky link — everything still succeeds via retries.
  fabric_->faults().SetDropPlan("client-d", "server",
                                rdma::FaultController::DropPlan{0, 7});
  EXPECT_EQ(run_ops(40), 40);
  fabric_->faults().ClearLink("client-d", "server");

  // Phase 2: partition until the watchdog trips, then heal.
  fabric_->faults().Partition("client-d", "server");
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() != ConnState::kConnected;
  }));
  fabric_->faults().Heal("client-d", "server");
  ASSERT_TRUE(testutil::WaitUntil([&] {
    client->Poll();
    return client->conn_state() == ConnState::kConnected;
  }));
  EXPECT_EQ(run_ops(20), 20);

  // Phase 3: full server restart; the client re-bootstraps on demand.
  RestartServer();
  const geo::Rect probe{0.3, 0.3, 0.5, 0.5};
  ASSERT_TRUE(testutil::WaitUntil(
      [&] {
        try {
          return Ids(client->SearchFast(probe)) == oracle_.Search(probe);
        } catch (const ClientError&) {
          return false;
        }
      },
      10s));

  EXPECT_EQ(client->server_generation(), 2u);
  EXPECT_GE(client->stats().reconnects, 1u);
  EXPECT_EQ(run_ops(20), 20);

  // Recovery is observable and bounded in the flight recorder: the
  // kReconnect event carries the re-bootstrap duration in b.
#if CATFISH_TELEMETRY_ENABLED
  const auto events = telemetry::EventRecorder::Global().Drain();
  bool saw_reconnect = false;
  for (const auto& e : events) {
    if (e.type == telemetry::EventType::kReconnect) {
      saw_reconnect = true;
      EXPECT_LT(e.b, 10e6) << "re-bootstrap took " << e.b << "us";
    }
  }
  EXPECT_TRUE(saw_reconnect);
#endif
}

}  // namespace
}  // namespace catfish

// Tests of the flight recorder: per-thread rings, time-sorted drain,
// bounded drop-oldest retention, the Peek/Drain distinction, the JSON
// and table exporters, and the CATFISH_EVENT macro wiring.
#include "telemetry/events.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json_util.h"

namespace catfish::telemetry {
namespace {

TEST(EventRecorderTest, DrainReturnsTimeSortedEvents) {
  EventRecorder rec;
  rec.Record(EventType::kModeSwitch, 300, 1);
  rec.Record(EventType::kHeartbeat, 100, 2, 0.5);
  rec.Record(EventType::kBackoffEscalate, 200, 3, 1.0, 2.0);
  const auto events = rec.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_us, 100u);
  EXPECT_EQ(events[1].t_us, 200u);
  EXPECT_EQ(events[2].t_us, 300u);
  EXPECT_EQ(events[0].type, EventType::kHeartbeat);
  EXPECT_EQ(events[0].actor, 2u);
  EXPECT_DOUBLE_EQ(events[0].a, 0.5);
  EXPECT_DOUBLE_EQ(events[2].b, 0.0);
}

TEST(EventRecorderTest, StableSortKeepsRecordOrderWithinTimestamp) {
  EventRecorder rec;
  for (uint64_t i = 0; i < 5; ++i) {
    rec.Record(EventType::kCustom, 42, /*actor=*/i);
  }
  const auto events = rec.Drain();
  ASSERT_EQ(events.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].actor, i);
}

TEST(EventRecorderTest, DrainConsumesPeekDoesNot) {
  EventRecorder rec;
  rec.Record(EventType::kRingStall, 10);
  EXPECT_EQ(rec.Peek().size(), 1u);
  EXPECT_EQ(rec.Peek().size(), 1u);
  EXPECT_EQ(rec.Drain().size(), 1u);
  EXPECT_TRUE(rec.Drain().empty());
  EXPECT_EQ(rec.recorded(), 1u);
}

TEST(EventRecorderTest, BoundedRingDropsOldest) {
  EventRecorderConfig cfg;
  cfg.per_thread_capacity = 4;
  EventRecorder rec(cfg);
  for (uint64_t t = 1; t <= 10; ++t) {
    rec.Record(EventType::kCustom, t);
  }
  const auto events = rec.Peek();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive.
  EXPECT_EQ(events.front().t_us, 7u);
  EXPECT_EQ(events.back().t_us, 10u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(EventRecorderTest, ClearEmptiesWithoutCountingDrops) {
  EventRecorder rec;
  rec.Record(EventType::kCustom, 1);
  rec.Record(EventType::kCustom, 2);
  rec.Clear();
  EXPECT_TRUE(rec.Peek().empty());
}

TEST(EventRecorderTest, MergesAcrossThreads) {
  EventRecorder rec;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&rec, i] {
      for (uint64_t n = 0; n < kPerThread; ++n) {
        rec.Record(EventType::kHeartbeat, n * 10 + static_cast<uint64_t>(i),
                   static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = rec.Drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::set<uint32_t> ordinals;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_us, events[i - 1].t_us);
    ordinals.insert(events[i].thread);
  }
  EXPECT_EQ(ordinals.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(EventTypeTest, NamesAreStable) {
  EXPECT_STREQ(EventTypeName(EventType::kModeSwitch), "mode_switch");
  EXPECT_STREQ(EventTypeName(EventType::kHeartbeat), "heartbeat");
  EXPECT_STREQ(EventTypeName(EventType::kBackoffEscalate),
               "backoff_escalate");
  EXPECT_STREQ(EventTypeName(EventType::kBackoffReset), "backoff_reset");
  EXPECT_STREQ(EventTypeName(EventType::kRetryExhausted), "retry_exhausted");
  EXPECT_STREQ(EventTypeName(EventType::kRingStall), "ring_stall");
  EXPECT_STREQ(EventTypeName(EventType::kUtilization), "utilization");
  EXPECT_STREQ(EventTypeName(EventType::kCustom), "custom");
}

TEST(EventExportTest, EventsJsonRoundTrips) {
  EventRecorder rec;
  rec.Record(EventType::kModeSwitch, 1234, 7, 1.0, 4.0);
  rec.Record(EventType::kBackoffReset, 5678, 7, 3.0, 0.4);
  const std::string json = EventsToJson(rec.Peek(), rec.dropped());
  const auto doc = testjson::Parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_EQ(doc->NumberOr("dropped", -1), 0.0);
  const testjson::Value* events = doc->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  const testjson::Value& first = events->array[0];
  EXPECT_EQ(first.NumberOr("t_us"), 1234.0);
  EXPECT_EQ(first.NumberOr("actor"), 7.0);
  EXPECT_DOUBLE_EQ(first.NumberOr("b"), 4.0);
  const testjson::Value* type = first.Find("type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->string, "mode_switch");
}

TEST(EventExportTest, DumpEventsWritesOneLinePerEvent) {
  EventRecorder rec;
  rec.Record(EventType::kRetryExhausted, 99, 5, 3.0, 16.0);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  DumpEvents(f, rec.Peek());
  std::rewind(f);
  char buf[4096] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string text(buf, n);
  EXPECT_NE(text.find("retry_exhausted"), std::string::npos) << text;
  EXPECT_NE(text.find("99"), std::string::npos);
}

#if CATFISH_TELEMETRY_ENABLED
TEST(EventMacroTest, RecordsToGlobalRecorder) {
  EventRecorder::Global().Clear();
  CATFISH_EVENT(kCustom, 777, 3, 1.5, 2.5);
  const auto events = EventRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t_us, 777u);
  EXPECT_EQ(events[0].actor, 3u);
  EXPECT_DOUBLE_EQ(events[0].a, 1.5);
  EXPECT_EQ(events[0].type, EventType::kCustom);
}
#endif

}  // namespace
}  // namespace catfish::telemetry

// Sharded scale-out suite. Three layers:
//  * partition unit tests — grid geometry, center ownership vs the
//    slop-widened query fan-out, and the hardened ShardMap codec
//    (typed truncation/corruption/skew rejection, no over-reads);
//  * real-stack integration — a 4-shard ShardHost served over the full
//    bootstrap/messaging/offload stack, cross-shard queries and routed
//    writes diffed against a brute-force oracle;
//  * DES acceptance — the sharded cluster simulation at 256 clients
//    with the built-in oracle, plus throughput scaling vs one shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/shard_sim.h"
#include "shard/client.h"
#include "shard/host.h"
#include "test_util.h"
#include "workload/generators.h"

namespace catfish {
namespace {

using shard::DecodeShardMap;
using shard::EncodeShardMap;
using shard::MapDecodeStatus;
using shard::ShardMap;
using testutil::BruteForceIndex;
using testutil::RandomRect;

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<rtree::Entry> MakeItems(size_t n, double max_edge, uint64_t seed,
                                    BruteForceIndex* oracle = nullptr) {
  Xoshiro256 rng(seed);
  std::vector<rtree::Entry> items;
  for (uint64_t i = 0; i < n; ++i) {
    const auto r = RandomRect(rng, max_edge);
    items.push_back({r, i});
    if (oracle != nullptr) oracle->Insert(r, i);
  }
  return items;
}

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(ShardPartition, GridCoversPlaneAndBalancesLoad) {
  const auto items = MakeItems(10'000, 0.01, 7);
  const auto map = shard::BuildGridMap(items, 4);
  ASSERT_TRUE(map.Valid());
  ASSERT_EQ(map.shard_count(), 4u);
  EXPECT_EQ(map.cells.size(), static_cast<size_t>(map.cols()) * map.rows());
  for (const uint32_t s : map.cells) EXPECT_LT(s, 4u);

  const auto buckets = shard::PartitionItems(map, items);
  ASSERT_EQ(buckets.size(), 4u);
  size_t total = 0;
  for (const auto& b : buckets) {
    total += b.size();
    // Quantile cuts: no shard is empty or hoards most of the data.
    EXPECT_GT(b.size(), items.size() / 16);
    EXPECT_LT(b.size(), items.size() / 2);
  }
  EXPECT_EQ(total, items.size());

  // Ownership is total: any rect (even outside the bounds) has an owner.
  EXPECT_LT(map.OwnerOf(geo::Rect{-5.0, -5.0, -4.9, -4.9}), 4u);
  EXPECT_LT(map.OwnerOf(geo::Rect{7.0, 7.0, 7.1, 7.1}), 4u);
}

TEST(ShardPartition, QueryFanOutCoversEveryIntersectingItem) {
  const auto items = MakeItems(5'000, 0.02, 13);
  const auto map = shard::BuildGridMap(items, 8);
  ASSERT_TRUE(map.Valid());

  Xoshiro256 rng(17);
  std::vector<uint32_t> targets;
  for (int iter = 0; iter < 500; ++iter) {
    // Mix narrow probes with wide scans that straddle several cells.
    const auto q = RandomRect(rng, iter % 2 == 0 ? 0.01 : 0.7);
    map.QueryShards(q, targets);
    ASSERT_FALSE(targets.empty());
    EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
    // The fan-out set must contain the owner of every intersecting item
    // — this is exactly the slop-widening guarantee.
    for (const auto& e : items) {
      if (!e.mbr.Intersects(q)) continue;
      EXPECT_TRUE(std::binary_search(targets.begin(), targets.end(),
                                     map.OwnerOf(e.mbr)))
          << "item " << e.id << " owner missing from fan-out";
    }
  }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

ShardMap SampleMap() {
  const auto items = MakeItems(2'000, 0.01, 23);
  ShardMap map = shard::BuildGridMap(items, 4);
  map.version = 42;
  for (uint32_t i = 0; i < map.shard_count(); ++i) {
    map.shards[i].generation = 3 + i;
    map.shards[i].arena_rkey = 100 + i;
  }
  return map;
}

TEST(ShardMapCodec, RoundTrips) {
  const ShardMap map = SampleMap();
  ShardMap decoded;
  ASSERT_EQ(DecodeShardMap(EncodeShardMap(map), decoded),
            MapDecodeStatus::kOk);
  EXPECT_EQ(decoded, map);
}

TEST(ShardMapCodec, EveryTruncationIsTypedAndLeavesOutputUntouched) {
  const auto bytes = EncodeShardMap(SampleMap());
  for (size_t len = 0; len < bytes.size(); ++len) {
    ShardMap out;
    out.version = 777;  // sentinel: must survive a failed decode
    const auto st = DecodeShardMap(
        std::span<const std::byte>(bytes.data(), len), out);
    EXPECT_EQ(st, MapDecodeStatus::kTruncated) << "prefix length " << len;
    EXPECT_EQ(out.version, 777u);
  }
}

TEST(ShardMapCodec, TrailingBytesMagicAndSkewAreTyped) {
  const ShardMap map = SampleMap();
  auto bytes = EncodeShardMap(map);
  ShardMap out;

  auto extended = bytes;
  extended.push_back(std::byte{0x5a});
  EXPECT_EQ(DecodeShardMap(extended, out), MapDecodeStatus::kCorrupt);

  auto bad_magic = bytes;
  bad_magic[0] ^= std::byte{0xff};
  EXPECT_EQ(DecodeShardMap(bad_magic, out), MapDecodeStatus::kBadMagic);

  // A future format version must be rejected as skew, not misparsed.
  auto skew = bytes;
  skew[4] = std::byte{static_cast<uint8_t>(shard::kShardMapFormatVersion + 1)};
  EXPECT_EQ(DecodeShardMap(skew, out), MapDecodeStatus::kVersionSkew);
}

TEST(ShardMapCodec, AbsurdGeometryClaimsAreRejected) {
  // A tiny blob claiming a huge grid must die on the bound check, not
  // allocate gigabytes or over-read.
  auto bytes = EncodeShardMap(SampleMap());
  // cols/rows live right after the fixed header block (8 + 8 + 5*8).
  const size_t dims_off = 8 + 8 + 5 * 8;
  bytes[dims_off] = std::byte{0xff};
  bytes[dims_off + 1] = std::byte{0xff};
  ShardMap out;
  EXPECT_EQ(DecodeShardMap(bytes, out), MapDecodeStatus::kCorrupt);
}

// ---------------------------------------------------------------------------
// Real-stack integration: 4 shards behind ShardHost, full RDMA-sim
// messaging/offload stack, diffed against the brute-force oracle.
// ---------------------------------------------------------------------------

class ShardStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_unique<rdma::Fabric>(rdma::FabricProfile::Instant());
    shard::ShardHostConfig cfg;
    cfg.num_shards = 4;
    cfg.server.heartbeat_interval_us = 1'000;
    // Headroom for test inserts larger than anything bulk-loaded.
    cfg.min_slop = 0.01;
    host_ = std::make_unique<shard::ShardHost>(*fabric_, cfg);
    items_ = MakeItems(2'000, 0.01, 31, &oracle_);
    host_->Load(items_);
  }

  void TearDown() override {
    clients_.clear();
    host_->Stop();
  }

  shard::ShardedRTreeClient& Connect(const std::string& name) {
    auto node = fabric_->CreateNode(name);
    shard::ShardedClientConfig cfg;
    cfg.client.adaptive.heartbeat_interval_us = 1'000;
    clients_.push_back(std::make_unique<shard::ShardedRTreeClient>(
        node, [this](uint32_t s) { return host_->Dial(s); }, cfg));
    return *clients_.back();
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<shard::ShardHost> host_;
  std::vector<rtree::Entry> items_;
  std::vector<std::unique_ptr<shard::ShardedRTreeClient>> clients_;
  BruteForceIndex oracle_;
};

TEST_F(ShardStackTest, BootstrapDeliversRoutingTable) {
  auto& client = Connect("client-a");
  EXPECT_EQ(client.shard_count(), 4u);
  EXPECT_EQ(client.map(), host_->map());
  EXPECT_EQ(client.map().version, 1u);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(client.shard_client(s).server_generation(),
              client.map().shards[s].generation);
  }
}

TEST_F(ShardStackTest, HeartbeatAdvertisesRepublishToUntouchedConnections) {
  auto& client = Connect("client-hb");
  ASSERT_EQ(client.map().version, 1u);

  // A tiny probe owned by exactly one shard; restart a *different* one.
  // No op ever touches the restarted shard, so every generation the
  // client checks still matches — without the heartbeat map-version
  // tail it would keep its v1 table indefinitely.
  const geo::Rect probe{0.4, 0.4, 0.402, 0.402};
  std::vector<uint32_t> targets;
  client.map().QueryShards(probe, targets);
  ASSERT_EQ(targets.size(), 1u);
  const uint32_t touched = targets[0];
  const uint32_t restarted = (touched + 1) % 4;

  host_->RestartShard(restarted);
  ASSERT_EQ(host_->map_version(), 2u);

  // Narrow searches keep pumping the touched shard's response ring; one
  // of its heartbeats advertises version 2 and the router re-bootstraps
  // that healthy connection to fetch the republished table.
  ASSERT_TRUE(testutil::WaitUntil([&] {
    (void)client.Search(probe);
    return client.map().version == 2;
  }));
  EXPECT_GE(client.stats().proactive_refreshes, 1u);
  EXPECT_EQ(client.map().shards[restarted].generation,
            host_->map().shards[restarted].generation);
  EXPECT_EQ(client.shard_client(touched).advertised_map_version(), 2u);
}

TEST_F(ShardStackTest, CrossShardSearchMatchesOracle) {
  auto& client = Connect("client-b");
  Xoshiro256 rng(37);
  uint64_t wide = 0;
  for (int i = 0; i < 120; ++i) {
    const auto q = RandomRect(rng, i % 3 == 0 ? 0.6 : 0.02);
    EXPECT_EQ(Ids(client.Search(q)), oracle_.Search(q));
    if (client.last_fanout() > 1) ++wide;
  }
  // The wide probes must actually exercise the fan-out path.
  EXPECT_GT(wide, 0u);
  EXPECT_GT(client.stats().fanout_subqueries, client.stats().searches);
}

TEST_F(ShardStackTest, WritesRouteToOwnerAndReadBack) {
  auto& client = Connect("client-c");
  Xoshiro256 rng(41);
  for (uint64_t i = 0; i < 200; ++i) {
    const auto r = RandomRect(rng, 0.01);
    ASSERT_TRUE(client.Insert(r, 50'000 + i));
    oracle_.Insert(r, 50'000 + i);
  }
  // Every write landed on exactly the shard owning its center.
  for (uint32_t s = 0; s < 4; ++s) {
    size_t expected = 0;
    for (const auto& [rect, id] : oracle_.items()) {
      if (client.map().OwnerOf(rect) == s) ++expected;
    }
    EXPECT_EQ(host_->tree(s).size(), expected);
  }
  for (int i = 0; i < 60; ++i) {
    const auto q = RandomRect(rng, 0.3);
    EXPECT_EQ(Ids(client.Search(q)), oracle_.Search(q));
  }
  // Deletes route the same way.
  for (uint64_t i = 0; i < 200; i += 2) {
    const auto r = oracle_.RectOf(50'000 + i);
    ASSERT_TRUE(client.Delete(r, 50'000 + i));
    ASSERT_TRUE(oracle_.Delete(r, 50'000 + i));
  }
  for (int i = 0; i < 60; ++i) {
    const auto q = RandomRect(rng, 0.3);
    EXPECT_EQ(Ids(client.Search(q)), oracle_.Search(q));
  }
}

TEST_F(ShardStackTest, NearestNeighborsMergeAcrossShards) {
  auto& client = Connect("client-d");
  Xoshiro256 rng(43);
  for (int i = 0; i < 40; ++i) {
    const geo::Point p{rng.NextDouble(), rng.NextDouble()};
    const auto got = client.NearestNeighbors(p, 10);
    ASSERT_EQ(got.size(), 10u);
    // Distances must be globally minimal, not just per-shard minimal.
    std::vector<double> dists;
    for (const auto& [rect, id] : oracle_.items()) {
      dists.push_back(geo::MinDist2(rect, p));
    }
    std::sort(dists.begin(), dists.end());
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_DOUBLE_EQ(geo::MinDist2(got[k].mbr, p), dists[k]);
    }
  }
}

// ---------------------------------------------------------------------------
// DES acceptance: 4 shards, 256 simulated clients, built-in oracle.
// ---------------------------------------------------------------------------

model::ShardedClusterConfig DesConfig(uint32_t shards, size_t clients,
                                      uint64_t requests) {
  model::ShardedClusterConfig cfg;
  cfg.scheme = model::Scheme::kCatfish;
  cfg.num_shards = shards;
  cfg.num_clients = clients;
  cfg.requests_per_client = requests;
  cfg.workload.dist = workload::RequestGen::ScaleDist::kPowerLaw;
  cfg.workload.pl_hi = 0.3;  // heavy tail crosses shard boundaries
  cfg.workload.insert_ratio = 0.1;
  cfg.seed = 20260705;
  cfg.arena_chunks = 1 << 13;
  return cfg;
}

TEST(ShardDes, FourShards256ClientsMatchOracle) {
  const auto items = MakeItems(50'000, 1e-4, 47);
  auto cfg = DesConfig(4, 256, 40);
  cfg.oracle_every = 16;  // diff every 16th search against brute force
  model::ShardedClusterSim sim(items, cfg);
  const auto r = sim.Run();
  EXPECT_EQ(r.completed, 256u * 40u);
  EXPECT_GT(r.oracle_checks, 50u);
  EXPECT_EQ(r.oracle_mismatches, 0u);
  EXPECT_GT(r.inserts, 0u);
  EXPECT_GE(r.mean_fanout, 1.0);
  EXPECT_GT(r.fast_subqueries + r.offload_subqueries, r.searches);
}

TEST(ShardDes, ThroughputScalesWithShardCount) {
  const auto items = MakeItems(50'000, 1e-4, 53);
  std::vector<double> kops;
  for (const uint32_t shards : {1u, 4u}) {
    model::ShardedClusterSim sim(items, DesConfig(shards, 128, 40));
    kops.push_back(sim.Run().throughput_kops);
  }
  // 4 shards must beat 1 shard decisively (acceptance: aggregate search
  // throughput increases with shard count).
  EXPECT_GT(kops[1], kops[0] * 1.5);
}

}  // namespace
}  // namespace catfish

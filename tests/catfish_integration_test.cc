// End-to-end tests of the Catfish client/server over the emulated fabric:
// fast messaging, RDMA offloading, write paths, heartbeats, adaptivity,
// and concurrent read/write conflict handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "catfish/client.h"
#include "catfish/server.h"
#include "rtree/bulk_load.h"
#include "test_util.h"

namespace catfish {
namespace {

using namespace std::chrono_literals;
using testutil::BruteForceIndex;
using testutil::RandomRect;

std::vector<uint64_t> Ids(std::vector<rtree::Entry> entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class CatfishIntegrationTest : public ::testing::Test {
 protected:
  static constexpr size_t kDatasetSize = 3000;

  void SetUpServer(NotifyMode mode = NotifyMode::kEventDriven,
                   uint64_t heartbeat_us = 10'000) {
    fabric_ = std::make_unique<rdma::Fabric>(
        rdma::FabricProfile::InfiniBand100G());
    server_node_ = fabric_->CreateNode("server");

    arena_ = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 14);
    Xoshiro256 rng(2024);
    std::vector<rtree::Entry> items;
    for (uint64_t i = 0; i < kDatasetSize; ++i) {
      const auto r = RandomRect(rng, 0.01);
      items.push_back({r, i});
      oracle_.Insert(r, i);
    }
    tree_ = std::make_unique<rtree::RStarTree>(
        rtree::BulkLoad(*arena_, items));

    ServerConfig cfg;
    cfg.mode = mode;
    cfg.heartbeat_interval_us = heartbeat_us;
    server_ = std::make_unique<RTreeServer>(server_node_, *tree_, cfg);
  }

  std::unique_ptr<RTreeClient> MakeClient(ClientConfig cfg = {}) {
    auto node = fabric_->CreateNode("client");
    return std::make_unique<RTreeClient>(node, *server_, cfg);
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  std::shared_ptr<rdma::SimNode> server_node_;
  std::unique_ptr<rtree::NodeArena> arena_;
  std::unique_ptr<rtree::RStarTree> tree_;
  std::unique_ptr<RTreeServer> server_;
  BruteForceIndex oracle_;
};

TEST_F(CatfishIntegrationTest, FastSearchMatchesOracle) {
  SetUpServer();
  auto client = MakeClient();
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
  }
  EXPECT_EQ(client->stats().fast_searches, 50u);
  EXPECT_EQ(server_->stats().searches, 50u);
}

TEST_F(CatfishIntegrationTest, OffloadSearchMatchesOracle) {
  SetUpServer();
  auto client = MakeClient();
  Xoshiro256 rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  }
  EXPECT_EQ(client->stats().offloaded_searches, 50u);
  // Offloaded searches never touch the server threads.
  EXPECT_EQ(server_->stats().searches, 0u);
  EXPECT_GT(client->stats().rdma_reads, 50u);
  EXPECT_GT(server_node_->stats().reads_served, 0u);
}

TEST_F(CatfishIntegrationTest, SingleIssueOffloadAlsoCorrect) {
  SetUpServer();
  ClientConfig cfg;
  cfg.multi_issue = false;
  auto client = MakeClient(cfg);
  Xoshiro256 rng(3);
  for (int i = 0; i < 30; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
  }
}

TEST_F(CatfishIntegrationTest, OffloadTraceMatchesTreeShape) {
  SetUpServer();
  auto client = MakeClient();
  rtree::TraversalTrace trace;
  client->SearchOffloaded(geo::Rect{0.4, 0.4, 0.6, 0.6}, &trace);
  EXPECT_GE(trace.Rounds(), 1u);
  EXPECT_LE(trace.Rounds(), client->tree_height());
  EXPECT_EQ(trace.nodes_per_level[0], 1u);  // root round
}

TEST_F(CatfishIntegrationTest, LargeResponseIsSegmented) {
  SetUpServer();
  ClientConfig cfg;
  cfg.ring_capacity = 8 * 1024;  // max payload ≈ 4 KB ≈ 100 entries
  auto client = MakeClient(cfg);
  // Whole-space search returns all 3000 entries across many segments.
  const auto results = client->SearchFast(geo::Rect{0, 0, 1, 1});
  EXPECT_EQ(results.size(), kDatasetSize);
  EXPECT_EQ(Ids(results), oracle_.Search(geo::Rect{0, 0, 1, 1}));
}

TEST_F(CatfishIntegrationTest, InsertVisibleToBothPaths) {
  SetUpServer();
  auto client = MakeClient();
  const geo::Rect r{0.42, 0.42, 0.4201, 0.4201};
  ASSERT_TRUE(client->Insert(r, 777777));

  auto fast_ids = Ids(client->SearchFast(r));
  auto off_ids = Ids(client->SearchOffloaded(r));
  EXPECT_NE(std::find(fast_ids.begin(), fast_ids.end(), 777777u),
            fast_ids.end());
  EXPECT_EQ(fast_ids, off_ids);
  EXPECT_EQ(server_->stats().inserts, 1u);
}

TEST_F(CatfishIntegrationTest, DeleteAcksReflectExistence) {
  SetUpServer();
  auto client = MakeClient();
  const geo::Rect r{0.11, 0.11, 0.12, 0.12};
  ASSERT_TRUE(client->Insert(r, 5555));
  EXPECT_TRUE(client->Delete(r, 5555));
  EXPECT_FALSE(client->Delete(r, 5555));  // already gone
  EXPECT_TRUE(Ids(client->SearchFast(r)).empty() ||
              !oracle_.Search(r).empty());
}

TEST_F(CatfishIntegrationTest, PollingModeServesRequests) {
  SetUpServer(NotifyMode::kPolling);
  auto client = MakeClient();
  Xoshiro256 rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto q = RandomRect(rng, 0.05);
    EXPECT_EQ(Ids(client->SearchFast(q)), oracle_.Search(q));
  }
}

TEST_F(CatfishIntegrationTest, HeartbeatsReachClient) {
  SetUpServer(NotifyMode::kEventDriven, /*heartbeat_us=*/2'000);
  auto client = MakeClient();
  std::this_thread::sleep_for(50ms);
  // Any request pumps pending heartbeats into the controller.
  client->SearchFast(geo::Rect{0.5, 0.5, 0.51, 0.51});
  EXPECT_GT(client->stats().heartbeats_received, 0u);
  EXPECT_GT(server_->stats().heartbeats_sent, 0u);
}

TEST_F(CatfishIntegrationTest, AdaptiveSwitchesToOffloadWhenBusy) {
  SetUpServer(NotifyMode::kEventDriven, /*heartbeat_us=*/1'000);
  ClientConfig cfg;
  cfg.mode = ClientMode::kAdaptive;
  cfg.adaptive.heartbeat_interval_us = 1'000;
  auto client = MakeClient(cfg);

  // Pretend the server is saturated.
  server_->OverrideUtilization(1.0);
  std::this_thread::sleep_for(20ms);

  Xoshiro256 rng(5);
  uint64_t offloaded = 0;
  for (int i = 0; i < 200; ++i) {
    const auto q = RandomRect(rng, 0.01);
    EXPECT_EQ(Ids(client->Search(q)), oracle_.Search(q));
    if (client->last_mode() == AccessMode::kRdmaOffloading) ++offloaded;
    std::this_thread::sleep_for(100us);
  }
  EXPECT_GT(offloaded, 60u);

  // Server recovers. Algorithm 1 never cancels the already-drawn r_off
  // rounds — the client finishes draining them, then returns to fast
  // messaging and stays there (r_busy was reset by the idle heartbeat).
  server_->OverrideUtilization(0.05);
  std::this_thread::sleep_for(20ms);
  uint64_t fast_tail = 0;
  for (int i = 0; i < 5000 && fast_tail < 50; ++i) {
    client->Search(RandomRect(rng, 0.01));
    if (client->last_mode() == AccessMode::kFastMessaging) ++fast_tail;
  }
  EXPECT_GE(fast_tail, 50u);
  // Once drained, subsequent requests are consistently fast.
  uint64_t fast_after = 0;
  for (int i = 0; i < 50; ++i) {
    client->Search(RandomRect(rng, 0.01));
    if (client->last_mode() == AccessMode::kFastMessaging) ++fast_after;
  }
  EXPECT_EQ(fast_after, 50u);
}

TEST_F(CatfishIntegrationTest, KnnServedByServer) {
  SetUpServer();
  auto client = MakeClient();
  const geo::Point p{0.4, 0.6};
  const auto got = client->NearestNeighbors(p, 15);
  ASSERT_EQ(got.size(), 15u);
  // Distances ascend and match a direct tree query.
  std::vector<rtree::Entry> direct;
  tree_->NearestNeighbors(p, 15, direct);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(geo::MinDist2(got[i].mbr, p),
                geo::MinDist2(direct[i].mbr, p), 1e-12);
  }
  EXPECT_EQ(server_->stats().searches, 1u);
}

TEST_F(CatfishIntegrationTest, NodeCacheCutsReads) {
  SetUpServer(NotifyMode::kEventDriven, /*heartbeat_us=*/2'000);
  ClientConfig cfg;
  cfg.cache_internal_nodes = true;
  auto client = MakeClient(cfg);

  // Let a heartbeat arrive so the cache has an epoch to pin against.
  std::this_thread::sleep_for(20ms);
  client->SearchFast(geo::Rect{0.5, 0.5, 0.51, 0.51});  // pumps heartbeats
  ASSERT_GT(client->stats().heartbeats_received, 0u);

  // First offloaded search populates; repeats hit the cached internals.
  const geo::Rect q{0.3, 0.3, 0.35, 0.35};
  const auto first = Ids(client->SearchOffloaded(q));
  const uint64_t reads_after_first = client->stats().rdma_reads;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Ids(client->SearchOffloaded(q)), first);
  }
  const uint64_t reads_delta =
      client->stats().rdma_reads - reads_after_first;
  EXPECT_GT(client->stats().cache_hits, 0u);
  // Repeat searches fetch strictly fewer chunks than the cold search.
  EXPECT_LT(reads_delta, reads_after_first * 10);
  EXPECT_EQ(Ids(client->SearchOffloaded(q)), oracle_.Search(q));
}

TEST_F(CatfishIntegrationTest, NodeCacheSeesInsertsAfterHeartbeat) {
  SetUpServer(NotifyMode::kEventDriven, /*heartbeat_us=*/1'000);
  ClientConfig cfg;
  cfg.cache_internal_nodes = true;
  auto client = MakeClient(cfg);
  std::this_thread::sleep_for(20ms);

  const geo::Rect q{0.71, 0.71, 0.72, 0.72};
  client->SearchFast(q);              // pump heartbeats → epoch known
  client->SearchOffloaded(q);         // warm the cache

  // Insert through the server: the next heartbeat bumps the epoch and
  // flushes the cache, so the cached client finds the new entry within
  // ~Inv.
  const geo::Rect mine{0.711, 0.711, 0.7111, 0.7111};
  ASSERT_TRUE(client->Insert(mine, 31337));
  std::this_thread::sleep_for(20ms);

  std::vector<uint64_t> ids;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    client->SearchFast(q);  // pumps pending heartbeats
    ids = Ids(client->SearchOffloaded(q));
    if (std::binary_search(ids.begin(), ids.end(), 31337ull)) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "cached client never observed the insert";
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GT(client->stats().cache_invalidations, 0u);
}

TEST_F(CatfishIntegrationTest, ManyClientsConcurrently) {
  SetUpServer();
  constexpr int kClients = 6;
  constexpr int kRequests = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      ClientConfig cfg;
      cfg.mode = t % 2 ? ClientMode::kFastOnly : ClientMode::kOffloadOnly;
      cfg.seed = static_cast<uint64_t>(t) + 100;
      auto client = MakeClient(cfg);
      Xoshiro256 rng(static_cast<uint64_t>(t) + 10);
      for (int i = 0; i < kRequests; ++i) {
        const auto q = RandomRect(rng, 0.03);
        if (Ids(client->Search(q)) != oracle_.Search(q)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->connection_count(), static_cast<size_t>(kClients));
}

TEST_F(CatfishIntegrationTest, OffloadSurvivesConcurrentInserts) {
  SetUpServer();
  std::atomic<bool> stop{false};

  // Writer client hammers inserts through the server.
  std::thread writer([&] {
    auto wclient = MakeClient();
    Xoshiro256 rng(7);
    uint64_t id = 1'000'000;
    while (!stop.load(std::memory_order_relaxed)) {
      wclient->Insert(RandomRect(rng, 0.005), id++);
    }
  });

  // Reader offloads; every returned entry must genuinely intersect, and
  // all original (never-deleted) data must be found.
  {
    auto rclient = MakeClient();
    Xoshiro256 rng(8);
    for (int i = 0; i < 150; ++i) {
      const auto q = RandomRect(rng, 0.05);
      const auto results = rclient->SearchOffloaded(q);
      for (const auto& e : results) {
        ASSERT_TRUE(e.mbr.Intersects(q));
      }
      // All pre-loaded matches must be present (writer never deletes).
      const auto expect = oracle_.Search(q);
      auto ids = Ids(results);
      for (const uint64_t want : expect) {
        ASSERT_TRUE(std::binary_search(ids.begin(), ids.end(), want));
      }
    }
    stop.store(true);
    // Version retries are possible but must not be pathological.
    EXPECT_LT(rclient->stats().version_retries, 100000u);
  }
  writer.join();
}

}  // namespace
}  // namespace catfish

// Allocation regression harness for the messaging hot path: after
// warm-up, the steady-state ring send/receive loop and the server's
// reply codecs must not touch the global allocator (RingSender::frame_,
// RingReceiver::scratch_, per-connection reply scratch, trace_wire's
// append-into-capacity encoder). Counting is done by replacing the
// global operator new; disabled under sanitizers, whose own allocator
// interposition this would fight.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "msg/protocol.h"
#include "msg/ring.h"
#include "rdmasim/rdma.h"
#include "telemetry/trace_wire.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CATFISH_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CATFISH_ALLOC_COUNTING 0
#endif
#endif
#ifndef CATFISH_ALLOC_COUNTING
#define CATFISH_ALLOC_COUNTING 1
#endif

#if CATFISH_ALLOC_COUNTING

namespace {
std::atomic<size_t> g_allocs{0};
std::atomic<bool> g_counting{false};
}  // namespace

// The replaced new is malloc-backed, so free() in the deletes below is
// the matching deallocator; GCC's -Wmismatched-new-delete can't see
// through the replacement once call sites inline it.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // CATFISH_ALLOC_COUNTING

namespace catfish::msg {
namespace {

#if CATFISH_ALLOC_COUNTING

/// Counts global operator new calls within a scope.
class AllocCounter {
 public:
  AllocCounter() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocCounter() { g_counting.store(false, std::memory_order_relaxed); }
  size_t count() const { return g_allocs.load(std::memory_order_relaxed); }
};

// A connected sender/receiver pair over the instant fabric (the same
// harness ring_test.cc uses).
struct RingPair {
  rdma::Fabric fabric{rdma::FabricProfile::Instant()};
  std::shared_ptr<rdma::SimNode> a = fabric.CreateNode("sender");
  std::shared_ptr<rdma::SimNode> b = fabric.CreateNode("receiver");
  std::shared_ptr<rdma::QueuePair> a_qp, b_qp;
  std::vector<std::byte> ring_mem;
  alignas(8) std::array<std::byte, 8> ack_cell{};
  std::unique_ptr<RingSender> tx;
  std::unique_ptr<RingReceiver> rx;

  explicit RingPair(size_t capacity = 4096) : ring_mem(capacity) {
    a_qp = a->CreateQp(a->CreateCq(), a->CreateCq());
    b_qp = b->CreateQp(b->CreateCq(), b->CreateCq());
    rdma::QueuePair::Connect(a_qp, b_qp);
    const auto ring_mr = b->RegisterMemory(ring_mem);
    const auto ack_mr = a->RegisterMemory(ack_cell);
    tx = std::make_unique<RingSender>(a_qp, rdma::RemoteAddr{ring_mr.rkey, 0},
                                      capacity,
                                      std::span<std::byte>(ack_cell));
    rx = std::make_unique<RingReceiver>(std::span<std::byte>(ring_mem), b_qp,
                                        rdma::RemoteAddr{ack_mr.rkey, 0});
  }
};

TEST(AllocTest, SteadyStateRingRoundTripIsAllocationFree) {
  RingPair p;
  const std::vector<std::byte> payload(256, std::byte{0x5a});
  Message m;  // reused across the loop: payload capacity is retained

  // Warm-up grows every scratch buffer and initializes the metric
  // statics — 64 round trips cross the ring boundary several times, so
  // the PAD/wrap path warms too.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(p.tx->TrySend(1, kFlagEnd, payload));
    ASSERT_TRUE(p.rx->TryReceive(m));
  }

  size_t failures = 0;
  size_t allocs = 0;
  {
    const AllocCounter counter;
    for (int i = 0; i < 512; ++i) {
      if (!p.tx->TrySend(1, kFlagEnd, payload)) ++failures;
      if (!p.rx->TryReceive(m)) ++failures;
    }
    allocs = counter.count();
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(allocs, 0u) << "steady-state ring traffic hit the allocator";
}

TEST(AllocTest, ServerReplyCodecsReuseScratch) {
  // The shapes the server's reply path reuses per connection.
  std::vector<rtree::Entry> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    const double x = static_cast<double>(i) / 300.0;
    entries.push_back({geo::Rect{x, x, x + 0.001, x + 0.001}, i});
  }
  std::vector<std::vector<std::byte>> seg_scratch;
  std::vector<std::byte> ack_scratch;
  constexpr size_t kMaxPayload = 2'000;

  EncodeSearchResponseInto(7, entries, kMaxPayload, seg_scratch);
  EncodeInto(WriteAck{7, 1}, ack_scratch);
  const size_t segs = seg_scratch.size();
  ASSERT_GT(segs, 1u);  // actually exercises segmentation

  size_t allocs = 0;
  {
    const AllocCounter counter;
    for (int i = 0; i < 256; ++i) {
      EncodeSearchResponseInto(7, entries, kMaxPayload, seg_scratch);
      EncodeInto(WriteAck{7, 1}, ack_scratch);
    }
    allocs = counter.count();
  }
  EXPECT_EQ(seg_scratch.size(), segs);
  EXPECT_EQ(allocs, 0u) << "reply codecs hit the allocator";
}

TEST(AllocTest, TraceWireEncoderReusesCapacity) {
  telemetry::Trace t("server.request", 11, 100);
  const auto dq = t.StartSpan(t.root(), "dequeue", 100);
  t.EndSpan(dq, 105);
  const auto tr = t.StartSpan(t.root(), "traverse", 105);
  t.SetAttr(tr, "nodes", 12);
  t.EndSpan(tr, 160);
  t.EndSpan(t.root(), 170);

  std::vector<std::byte> wire;
  telemetry::EncodeTrace(t, wire);  // warm: sizes the buffer

  size_t allocs = 0;
  {
    const AllocCounter counter;
    for (int i = 0; i < 256; ++i) {
      wire.clear();
      telemetry::EncodeTrace(t, wire);
    }
    allocs = counter.count();
  }
  EXPECT_EQ(allocs, 0u) << "trace encoder hit the allocator";
}

#else  // !CATFISH_ALLOC_COUNTING

TEST(AllocTest, DisabledUnderSanitizers) {
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
}

#endif

}  // namespace
}  // namespace catfish::msg

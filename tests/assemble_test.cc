#include "telemetry/assemble.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "json_util.h"

namespace catfish::telemetry {
namespace {

/// A fan-out root: one "subquery" span per shard, ending when that
/// shard's sub-query joined. Shard `slow` joins last by `slow_extra`.
std::shared_ptr<Trace> MakeFanout(int shards, int slow,
                                  uint64_t slow_extra) {
  auto t = std::make_shared<Trace>("shard.search", 1, 1000);
  uint64_t last_end = 0;
  for (int sh = 0; sh < shards; ++sh) {
    const SpanId sub = t->StartSpan(t->root(), "subquery", 1000);
    t->SetAttr(sub, "shard", sh);
    const uint64_t end = 1100 + (sh == slow ? slow_extra : 10 * sh);
    t->EndSpan(sub, end);
    last_end = std::max(last_end, end);
  }
  t->EndSpan(t->root(), last_end + 5);
  return t;
}

/// A server-side tree whose dominant stage is `stage` (of dequeue /
/// traverse / reply), covering [start, start+total).
std::shared_ptr<Trace> MakeServerTree(uint64_t start, uint64_t total,
                                      const char* stage) {
  auto t = std::make_shared<Trace>("server.request", 99, start);
  const uint64_t slice = total / 10;
  uint64_t at = start;
  for (const char* name : {"dequeue", "traverse", "reply"}) {
    const uint64_t dur =
        std::string_view(name) == stage ? total - 2 * slice : slice;
    const SpanId s = t->StartSpan(t->root(), name, at);
    at += dur;
    t->EndSpan(s, at);
  }
  t->EndSpan(t->root(), start + total);
  return t;
}

TEST(AssembleTest, GraftsRemotesUnderMatchingSubquerySpans) {
  auto root = MakeFanout(4, 2, 500);
  std::vector<RemoteTree> remotes;
  for (int sh = 0; sh < 4; ++sh) {
    remotes.push_back(
        {sh, MakeServerTree(1010, sh == 2 ? 580 : 80, "traverse")});
  }
  TraceAssembler asms;
  const AssembledTrace at = asms.Assemble(root, remotes);

  // 1 root + 4 subqueries + 4 * (1 remote root + 3 stages).
  EXPECT_EQ(root->span_count(), 1u + 4u + 4u * 4u);
  // Each remote root became a child of its shard's subquery span and
  // carries the graft markers.
  size_t grafted = 0;
  for (SpanId i = 0; i < root->span_count(); ++i) {
    const Span& s = root->span(i);
    if (s.name != "server.request") continue;
    ++grafted;
    EXPECT_EQ(s.AttrOr("remote"), 1);
    // Its parent is the subquery span tagged with the same shard.
    for (SpanId p = 0; p < root->span_count(); ++p) {
      const Span& ps = root->span(p);
      for (SpanId c : ps.children) {
        if (c == i) {
          EXPECT_EQ(ps.name, "subquery");
          EXPECT_EQ(ps.AttrOr("shard", -1), s.AttrOr("shard", -2));
        }
      }
    }
  }
  EXPECT_EQ(grafted, 4u);
  EXPECT_TRUE(at.trace->Complete());
}

TEST(AssembleTest, CriticalPathNamesTheSlowestSubquerysShardAndStage) {
  auto root = MakeFanout(4, 2, 500);
  std::vector<RemoteTree> remotes;
  for (int sh = 0; sh < 4; ++sh) {
    remotes.push_back(
        {sh, MakeServerTree(1010, sh == 2 ? 580 : 80, "traverse")});
  }
  TraceAssembler asms;
  const AssembledTrace at = asms.Assemble(root, remotes);

  // The path descends root -> slow subquery -> its remote tree's
  // traverse stage, and the costliest hop is attributed to shard 2.
  ASSERT_GE(at.critical.spans.size(), 3u);
  const Span& hop1 = at.trace->span(at.critical.spans[1]);
  EXPECT_EQ(hop1.name, "subquery");
  EXPECT_EQ(hop1.AttrOr("shard", -1), 2);
  EXPECT_EQ(at.critical.slowest_shard, 2);
  EXPECT_EQ(at.critical.slowest_stage, "traverse");
  EXPECT_EQ(at.critical.total_us,
            at.trace->span(at.trace->root()).end_us - 1000);

  // Stage costs cover the whole path, root first.
  ASSERT_EQ(at.critical.stages.size(), at.critical.spans.size());
  EXPECT_EQ(at.critical.stages[0].stage, "shard.search");
  EXPECT_EQ(at.critical.stages[0].shard, -1);  // client side
}

TEST(AssembleTest, RemoteWithoutMatchingSpanLandsUnderRoot) {
  auto root = MakeFanout(2, 0, 50);
  std::vector<RemoteTree> remotes{{7, MakeServerTree(1010, 40, "reply")}};
  TraceAssembler asms;
  asms.Assemble(root, remotes);
  const Span& r = root->span(root->root());
  // Root gained a third child (no subquery is tagged shard 7).
  ASSERT_EQ(r.children.size(), 3u);
  EXPECT_EQ(root->span(r.children[2]).name, "server.request");
  EXPECT_EQ(root->span(r.children[2]).AttrOr("shard"), 7);
}

TEST(AssembleTest, NullRemoteTreesAreSkipped) {
  auto root = MakeFanout(2, 1, 50);
  std::vector<RemoteTree> remotes{{0, nullptr}, {1, nullptr}};
  TraceAssembler asms;
  const AssembledTrace at = asms.Assemble(root, remotes);
  EXPECT_EQ(root->span_count(), 3u);  // nothing grafted
  EXPECT_EQ(at.critical.slowest_stage, "subquery");
}

TEST(AssembleTest, RingRetainsNewestAndBoundsMemory) {
  TraceAssembler asms(2);
  for (int i = 0; i < 5; ++i) {
    asms.Add(MakeFanout(2, 0, static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(asms.size(), 2u);
  const auto all = asms.Assembled();
  ASSERT_EQ(all.size(), 2u);
  // Oldest first; the last two Adds survive.
  EXPECT_EQ(all[1].critical.total_us >= all[0].critical.total_us, true);
  asms.Clear();
  EXPECT_EQ(asms.size(), 0u);
}

TEST(AssembleTest, ChromeJsonIsValidAndMarksCriticalPath) {
  auto root = MakeFanout(4, 3, 700);
  std::vector<RemoteTree> remotes;
  for (int sh = 0; sh < 4; ++sh) {
    remotes.push_back(
        {sh, MakeServerTree(1010, sh == 3 ? 760 : 60, "dequeue")});
  }
  TraceAssembler asms;
  asms.Assemble(root, remotes);

  const std::string doc = TracesToChromeJson(asms.Assembled());
  const auto parsed = testjson::Parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  const testjson::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete = 0, critical = 0, meta = 0;
  for (const auto& e : events->array) {
    const testjson::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      ++meta;
      continue;
    }
    ASSERT_EQ(ph->string, "X");
    ++complete;
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("dur"), nullptr);
    EXPECT_GE(e.NumberOr("pid", -1), 1.0);
    const testjson::Value* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    if (args->NumberOr("critical") == 1.0) ++critical;
  }
  EXPECT_EQ(complete, root->span_count());
  // Root + slow subquery + remote root + its dominant stage, at least.
  EXPECT_GE(critical, 3u);
  EXPECT_GT(meta, 0u);  // thread_name metadata rows

  // The raw-trace overload renders too (critical path computed inline).
  std::vector<std::shared_ptr<Trace>> raw{MakeFanout(2, 1, 30)};
  const auto raw_doc =
      TracesToChromeJson(std::span<const std::shared_ptr<Trace>>(raw));
  EXPECT_TRUE(testjson::Parse(raw_doc).has_value());
}

}  // namespace
}  // namespace catfish::telemetry

#include "workload/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace catfish::workload {
namespace {

TEST(WorkloadTest, UniformRectWithinBounds) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto r = UniformRect(rng, 0.01);
    ASSERT_TRUE(r.IsValid());
    ASSERT_GE(r.min_x, 0.0);
    ASSERT_GE(r.min_y, 0.0);
    ASSERT_LE(r.max_x, 1.0);
    ASSERT_LE(r.max_y, 1.0);
    ASSERT_LE(r.width(), 0.01);
    ASSERT_LE(r.height(), 0.01);
  }
}

TEST(WorkloadTest, PowerLawScaleSkewsSmall) {
  Xoshiro256 rng(2);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto r = PowerLawScaleRect(rng);
    ASSERT_LE(r.width(), 0.01);
    if (r.width() < 0.001 && r.height() < 0.001) ++small;
  }
  // f(t) ∝ t^-0.99 means most scales are near the bottom of the range.
  EXPECT_GT(small, n / 2);
}

TEST(WorkloadTest, SkewedInsertMatchesPaperScheme) {
  // §V-B: x,y ~ f(t) ∝ t^-0.99 on (0.5, 1], then reflected uniformly
  // into the four quadrants. Two checkable consequences: (a) each
  // coordinate's |c - 0.5| follows the power-law radial profile —
  // P(|c-0.5| ≤ 0.25) = P(t ≤ 0.75) ≈ 0.585, clearly above the uniform
  // 0.5; (b) all four quadrants receive equal mass.
  Xoshiro256 rng(3);
  const int n = 40000;
  int inner = 0;
  int quadrant[4] = {0, 0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const auto r = SkewedInsertRect(rng, 1e-4);
    ASSERT_TRUE(r.IsValid());
    ASSERT_GE(r.min_x, 0.0);
    ASSERT_LE(r.max_x, 1.0);
    ASSERT_GE(r.min_y, 0.0);
    ASSERT_LE(r.max_y, 1.0);
    const auto c = r.Center();
    if (std::abs(c.x - 0.5) <= 0.25) ++inner;
    ++quadrant[(c.x > 0.5 ? 1 : 0) + (c.y > 0.5 ? 2 : 0)];
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.585, 0.02);
  for (const int q : quadrant) EXPECT_NEAR(q, n / 4, n / 20);
}

TEST(WorkloadTest, UniformDatasetDeterministic) {
  const auto a = UniformDataset(1000, 1e-4, 77);
  const auto b = UniformDataset(1000, 1e-4, 77);
  ASSERT_EQ(a.size(), 1000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mbr, b[i].mbr);
    EXPECT_EQ(a[i].id, b[i].id);
  }
  const auto c = UniformDataset(1000, 1e-4, 78);
  EXPECT_FALSE(a[0].mbr == c[0].mbr);
}

TEST(Rea02Test, SyntheticMatchesPublishedStructure) {
  Rea02Config cfg;
  cfg.total = 50'000;  // scaled-down build for the unit test
  cfg.region_size = 5'000;
  const auto ds = BuildRea02Synthetic(11, cfg);
  ASSERT_EQ(ds.insert_order.size(), cfg.total);

  // All rects valid and inside the unit square; street segments are thin.
  for (const auto& e : ds.insert_order) {
    ASSERT_TRUE(e.mbr.IsValid());
    ASSERT_GE(e.mbr.min_x, 0.0);
    ASSERT_LE(e.mbr.max_x, 1.0);
    ASSERT_GE(e.mbr.min_y, 0.0);
    ASSERT_LE(e.mbr.max_y, 1.0);
    ASSERT_GT(e.mbr.width(), e.mbr.height());  // row segments are wide
  }

  // Ids are unique.
  std::vector<uint64_t> ids;
  for (const auto& e : ds.insert_order) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());

  // Insertion order is region-clustered: consecutive rects are mostly
  // near each other (row order within a region).
  int near = 0;
  const int probes = 1000;
  for (int i = 0; i < probes; ++i) {
    const auto& a = ds.insert_order[i].mbr;
    const auto& b = ds.insert_order[i + 1].mbr;
    if (geo::CenterDistance2(a, b) < 0.01) ++near;
  }
  EXPECT_GT(near, probes * 8 / 10);
}

TEST(Rea02Test, QueryCardinalityCalibrated) {
  Rea02Config cfg;
  cfg.total = 100'000;
  cfg.region_size = 10'000;
  const auto ds = BuildRea02Synthetic(5, cfg);

  // Brute-force count of matches per query: the mean must be near 100
  // with the bulk of queries inside a generous [25, 300] band.
  Xoshiro256 rng(6);
  double total = 0;
  int in_band = 0;
  const int probes = 60;
  for (int q = 0; q < probes; ++q) {
    const auto query = Rea02Query(rng, cfg);
    int hits = 0;
    for (const auto& e : ds.insert_order) {
      if (e.mbr.Intersects(query)) ++hits;
    }
    total += hits;
    if (hits >= 25 && hits <= 300) ++in_band;
  }
  EXPECT_NEAR(total / probes, 100.0, 50.0);
  EXPECT_GE(in_band, probes * 3 / 4);
}

TEST(RequestGenTest, SearchOnlyStream) {
  RequestGen::Config cfg;
  cfg.dist = RequestGen::ScaleDist::kFixed;
  cfg.scale = 1e-5;
  RequestGen gen(cfg, 9);
  for (int i = 0; i < 1000; ++i) {
    const auto req = gen.Next();
    ASSERT_EQ(req.op, OpType::kSearch);
    ASSERT_LE(req.rect.width(), 1e-5);
  }
}

TEST(RequestGenTest, HybridRatioApproximatelyHolds) {
  RequestGen::Config cfg;
  cfg.insert_ratio = 0.1;
  cfg.scale = 1e-2;
  RequestGen gen(cfg, 10);
  int inserts = 0;
  const int n = 20000;
  std::vector<uint64_t> insert_ids;
  for (int i = 0; i < n; ++i) {
    const auto req = gen.Next();
    if (req.op == OpType::kInsert) {
      ++inserts;
      insert_ids.push_back(req.id);
    }
  }
  EXPECT_NEAR(inserts, n / 10, n / 100);
  // Insert ids are unique and disjoint from dataset ids.
  std::sort(insert_ids.begin(), insert_ids.end());
  EXPECT_TRUE(std::adjacent_find(insert_ids.begin(), insert_ids.end()) ==
              insert_ids.end());
  EXPECT_GE(insert_ids.front(), 1ull << 32);
}

TEST(RequestGenTest, PowerLawDistProducesMixedScales) {
  RequestGen::Config cfg;
  cfg.dist = RequestGen::ScaleDist::kPowerLaw;
  RequestGen gen(cfg, 11);
  int tiny = 0;
  int large = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto req = gen.Next();
    if (req.rect.width() < 1e-4) ++tiny;
    if (req.rect.width() > 1e-3) ++large;
  }
  EXPECT_GT(tiny, 4000);  // skew toward small
  EXPECT_GT(large, 50);   // but the tail exists
}

}  // namespace
}  // namespace catfish::workload

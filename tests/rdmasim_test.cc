#include "rdmasim/rdma.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace catfish::rdma {
namespace {

using namespace std::chrono_literals;

struct Endpoints {
  Fabric fabric{FabricProfile::Instant()};
  std::shared_ptr<SimNode> server = fabric.CreateNode("server");
  std::shared_ptr<SimNode> client = fabric.CreateNode("client");
  std::shared_ptr<CompletionQueue> s_send, s_recv, c_send, c_recv;
  std::shared_ptr<QueuePair> s_qp, c_qp;

  Endpoints() {
    s_send = server->CreateCq();
    s_recv = server->CreateCq();
    c_send = client->CreateCq();
    c_recv = client->CreateCq();
    s_qp = server->CreateQp(s_send, s_recv);
    c_qp = client->CreateQp(c_send, c_recv);
    QueuePair::Connect(s_qp, c_qp);
  }
};

TEST(RdmaSimTest, WriteMovesBytes) {
  Endpoints ep;
  std::vector<std::byte> server_mem(256, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> data(100);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  ASSERT_TRUE(ep.c_qp->PostWrite(11, data, RemoteAddr{mr.rkey, 50}));

  for (size_t i = 0; i < 100; ++i)
    EXPECT_EQ(server_mem[50 + i], static_cast<std::byte>(i));

  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_EQ(wc.opcode, Opcode::kWrite);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.byte_len, 100u);
}

TEST(RdmaSimTest, ReadBypassesRemoteCpu) {
  Endpoints ep;
  std::vector<std::byte> server_mem(256, std::byte{0x5A});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> local(64, std::byte{0});
  ASSERT_TRUE(ep.c_qp->PostRead(3, local, RemoteAddr{mr.rkey, 10}));
  for (const auto b : local) EXPECT_EQ(b, std::byte{0x5A});

  // The read is accounted as served by the server NIC — no server thread
  // ever ran (there are none in this test).
  const auto stats = ep.server->stats();
  EXPECT_EQ(stats.reads_served, 1u);
  EXPECT_EQ(stats.bytes_sent, 64u);
  EXPECT_EQ(ep.client->stats().bytes_received, 64u);
}

TEST(RdmaSimTest, WriteImmRaisesRemoteCompletion) {
  Endpoints ep;
  std::vector<std::byte> server_mem(128, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> data(8, std::byte{1});
  ASSERT_TRUE(ep.c_qp->PostWriteImm(7, data, RemoteAddr{mr.rkey, 0}, 0xabcd));

  // The responder's recv CQ got the IMM notification.
  const auto wc = ep.s_recv->Wait(100ms);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->opcode, Opcode::kRecvImm);
  EXPECT_EQ(wc->imm_data, 0xabcdu);
  EXPECT_EQ(wc->byte_len, 8u);
  EXPECT_EQ(wc->qp_num, ep.s_qp->qp_num());
  EXPECT_EQ(ep.server->stats().imm_delivered, 1u);
}

TEST(RdmaSimTest, UnsignaledWriteOmitsCompletion) {
  Endpoints ep;
  std::vector<std::byte> server_mem(128, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  std::vector<std::byte> data(8, std::byte{2});
  ASSERT_TRUE(ep.c_qp->PostWrite(1, data, RemoteAddr{mr.rkey, 0},
                                 /*signaled=*/false));
  EXPECT_EQ(ep.c_send->Depth(), 0u);
  EXPECT_EQ(server_mem[0], std::byte{2});
}

TEST(RdmaSimTest, OutOfBoundsAccessFails) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> data(65);
  EXPECT_FALSE(ep.c_qp->PostWrite(1, data, RemoteAddr{mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);

  std::vector<std::byte> dst(8);
  EXPECT_FALSE(ep.c_qp->PostRead(2, dst, RemoteAddr{mr.rkey, 60}));
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST(RdmaSimTest, BadRkeyFails) {
  Endpoints ep;
  std::vector<std::byte> dst(8);
  EXPECT_FALSE(ep.c_qp->PostRead(1, dst, RemoteAddr{99, 0}));
}

TEST(RdmaSimTest, ClosedQpFlushes) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  ep.c_qp->Close();
  EXPECT_FALSE(ep.c_qp->connected());
  EXPECT_FALSE(ep.s_qp->connected());

  std::vector<std::byte> data(8);
  EXPECT_FALSE(ep.c_qp->PostWrite(5, data, RemoteAddr{mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kFlushed);
}

TEST(RdmaSimTest, CqWaitBlocksUntilPush) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  // No completion yet: Wait times out.
  EXPECT_FALSE(ep.s_recv->Wait(5ms).has_value());

  std::thread t([&] {
    std::this_thread::sleep_for(20ms);
    std::vector<std::byte> data(4, std::byte{9});
    ep.c_qp->PostWriteImm(1, data, RemoteAddr{mr.rkey, 0}, 42);
  });
  const auto wc = ep.s_recv->Wait(2s);
  t.join();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->imm_data, 42u);
}

TEST(RdmaSimTest, PerQpCompletionOrdering) {
  Endpoints ep;
  std::vector<std::byte> server_mem(1024, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  std::vector<std::byte> local(16);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ep.c_qp->PostRead(i, local, RemoteAddr{mr.rkey, i * 16}));
  }
  WorkCompletion wcs[10];
  ASSERT_EQ(ep.c_send->Poll(wcs), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(wcs[i].wr_id, i);
}

TEST(RdmaSimTest, PostBatchCompletesEveryWorkRequest) {
  Endpoints ep;
  constexpr size_t kN = 8;
  constexpr size_t kChunk = 64;
  std::vector<std::byte> server_mem(kN * kChunk);
  for (size_t i = 0; i < server_mem.size(); ++i) {
    server_mem[i] = static_cast<std::byte>(i & 0xff);
  }
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> local(kN * kChunk, std::byte{0});
  std::vector<WorkRequest> wrs(kN);
  for (size_t i = 0; i < kN; ++i) {
    wrs[i].kind = WorkRequest::Kind::kRead;
    wrs[i].wr_id = 100 + i;
    wrs[i].dst = std::span<std::byte>(local).subspan(i * kChunk, kChunk);
    wrs[i].remote = RemoteAddr{mr.rkey, i * kChunk};
  }
  bool ok[kN] = {};
  EXPECT_EQ(ep.c_qp->PostBatch(wrs, ok), kN);
  for (size_t i = 0; i < kN; ++i) EXPECT_TRUE(ok[i]);
  EXPECT_EQ(local, server_mem);

  // One CQE per READ, in post order, all successful.
  WorkCompletion wcs[kN];
  ASSERT_EQ(ep.c_send->PollMany(wcs), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(wcs[i].wr_id, 100 + i);
    EXPECT_EQ(wcs[i].status, WcStatus::kSuccess);
    EXPECT_EQ(wcs[i].opcode, Opcode::kRead);
    EXPECT_EQ(wcs[i].byte_len, kChunk);
  }
  EXPECT_EQ(ep.c_send->Depth(), 0u);
}

TEST(RdmaSimTest, PostBatchMixedKindsAndSignaling) {
  Endpoints ep;
  std::vector<std::byte> server_mem(256, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> payload(16, std::byte{0x7E});
  std::vector<std::byte> readback(16, std::byte{0});
  WorkRequest wrs[3];
  wrs[0].kind = WorkRequest::Kind::kWrite;  // unsignaled: no CQE
  wrs[0].wr_id = 1;
  wrs[0].src = payload;
  wrs[0].remote = RemoteAddr{mr.rkey, 0};
  wrs[0].signaled = false;
  wrs[1].kind = WorkRequest::Kind::kRead;  // reads always complete
  wrs[1].wr_id = 2;
  wrs[1].dst = readback;
  wrs[1].remote = RemoteAddr{mr.rkey, 0};
  wrs[2].kind = WorkRequest::Kind::kWriteImm;
  wrs[2].wr_id = 3;
  wrs[2].src = payload;
  wrs[2].remote = RemoteAddr{mr.rkey, 32};
  wrs[2].imm = 0xf00d;
  EXPECT_EQ(ep.c_qp->PostBatch(wrs), 3u);

  // The READ ordered after the WRITE observes its bytes.
  EXPECT_EQ(readback, payload);
  WorkCompletion wcs[4];
  ASSERT_EQ(ep.c_send->PollMany(wcs), 2u);  // unsignaled write skipped
  EXPECT_EQ(wcs[0].wr_id, 2u);
  EXPECT_EQ(wcs[1].wr_id, 3u);
  const auto imm = ep.s_recv->Wait(100ms);
  ASSERT_TRUE(imm.has_value());
  EXPECT_EQ(imm->imm_data, 0xf00du);
}

TEST(RdmaSimTest, PostBatchMidBatchDropErrorsOnlyThatWr) {
  Endpoints ep;
  std::vector<std::byte> server_mem(512, std::byte{0x33});
  const auto mr = ep.server->RegisterMemory(server_mem);

  // every=3 drops ordinals 2, 5, 8, ... — only ordinal 2 lands inside
  // this 5-WR batch, so exactly the middle read is lost.
  ep.fabric.faults().SetDropPlan("client", "server",
                                 FaultController::DropPlan{0, 3});

  constexpr size_t kN = 5;
  std::vector<std::byte> local(kN * 64, std::byte{0});
  std::vector<WorkRequest> wrs(kN);
  for (size_t i = 0; i < kN; ++i) {
    wrs[i].kind = WorkRequest::Kind::kRead;
    wrs[i].wr_id = 10 + i;
    wrs[i].dst = std::span<std::byte>(local).subspan(i * 64, 64);
    wrs[i].remote = RemoteAddr{mr.rkey, i * 64};
  }
  bool ok[kN] = {};
  EXPECT_EQ(ep.c_qp->PostBatch(wrs, ok), kN - 1);
  const bool expect_ok[kN] = {true, true, false, true, true};
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(ok[i], expect_ok[i]);

  // Exactly one error CQE, in order, and the later WRs still executed:
  // a soft mid-batch drop does not flush the rest of the chain.
  WorkCompletion wcs[kN];
  ASSERT_EQ(ep.c_send->PollMany(wcs), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(wcs[i].wr_id, 10 + i);
    EXPECT_EQ(wcs[i].status,
              i == 2 ? WcStatus::kRetryExceeded : WcStatus::kSuccess);
  }
  for (size_t i = 0; i < kN; ++i) {
    const std::byte want = i == 2 ? std::byte{0} : std::byte{0x33};
    EXPECT_EQ(local[i * 64], want) << i;
  }
}

TEST(RdmaSimTest, PollManyMatchesRepeatedPoll) {
  Endpoints pm, sp;  // identical traffic on two fabrics
  std::vector<std::byte> pm_mem(256, std::byte{1}), sp_mem(256, std::byte{1});
  const auto pm_mr = pm.server->RegisterMemory(pm_mem);
  const auto sp_mr = sp.server->RegisterMemory(sp_mem);

  std::vector<std::byte> buf(32);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(pm.c_qp->PostRead(i, buf, RemoteAddr{pm_mr.rkey, 8 * i}));
    ASSERT_TRUE(sp.c_qp->PostRead(i, buf, RemoteAddr{sp_mr.rkey, 8 * i}));
  }

  WorkCompletion many[8];
  const size_t n_many = pm.c_send->PollMany(many);
  std::vector<WorkCompletion> one_by_one;
  WorkCompletion wc;
  while (sp.c_send->Poll({&wc, 1}) == 1) one_by_one.push_back(wc);

  ASSERT_EQ(n_many, one_by_one.size());
  for (size_t i = 0; i < n_many; ++i) {
    EXPECT_EQ(many[i].wr_id, one_by_one[i].wr_id);
    EXPECT_EQ(many[i].status, one_by_one[i].status);
    EXPECT_EQ(many[i].opcode, one_by_one[i].opcode);
    EXPECT_EQ(many[i].byte_len, one_by_one[i].byte_len);
  }
  EXPECT_EQ(pm.c_send->Depth(), 0u);
  EXPECT_EQ(sp.c_send->Depth(), 0u);

  // A short output span drains incrementally without losing order.
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(pm.c_qp->PostRead(50 + i, buf, RemoteAddr{pm_mr.rkey, 0}));
  }
  WorkCompletion two[2];
  uint64_t next = 50;
  size_t got;
  while ((got = pm.c_send->PollMany(two)) > 0) {
    for (size_t i = 0; i < got; ++i) EXPECT_EQ(two[i].wr_id, next++);
  }
  EXPECT_EQ(next, 55u);
}

TEST(FaultControllerTest, QpErrorIsStickyAndTyped) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  FaultController::FailQp(*ep.c_qp);
  EXPECT_TRUE(ep.c_qp->in_error());
  EXPECT_FALSE(ep.c_qp->connected());

  std::vector<std::byte> data(8, std::byte{1});
  EXPECT_FALSE(ep.c_qp->PostWrite(1, data, RemoteAddr{mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kQpError);
  EXPECT_EQ(server_mem[0], std::byte{0}) << "errored post must not move bytes";

  // Sticky: still kQpError on the next post, and even after Close (an
  // errored-then-torn-down QP keeps reporting the error, like ibverbs).
  EXPECT_FALSE(ep.c_qp->PostRead(2, data, RemoteAddr{mr.rkey, 0}));
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kQpError);
  ep.c_qp->Close();
  EXPECT_FALSE(ep.c_qp->PostWrite(3, data, RemoteAddr{mr.rkey, 0}));
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kQpError);

  // The peer QP is unaffected until it talks to the dead end.
  EXPECT_FALSE(ep.s_qp->in_error());
}

TEST(FaultControllerTest, PartitionFailsBothDirectionsUntilHealed) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  std::vector<std::byte> client_mem(64, std::byte{0});
  const auto s_mr = ep.server->RegisterMemory(server_mem);
  const auto c_mr = ep.client->RegisterMemory(client_mem);

  ep.fabric.faults().Partition("client", "server");
  EXPECT_TRUE(ep.fabric.faults().Partitioned("server", "client"));

  std::vector<std::byte> data(8, std::byte{7});
  EXPECT_FALSE(ep.c_qp->PostWrite(1, data, RemoteAddr{s_mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRetryExceeded);
  EXPECT_FALSE(ep.s_qp->PostWrite(2, data, RemoteAddr{c_mr.rkey, 0}));
  ASSERT_EQ(ep.s_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRetryExceeded);
  EXPECT_EQ(ep.fabric.faults().dropped_ops(), 2u);

  // The QP survives the partition: healing restores service with no
  // reconnect (unlike a QP error).
  ep.fabric.faults().Heal("client", "server");
  EXPECT_FALSE(ep.fabric.faults().Partitioned("client", "server"));
  EXPECT_TRUE(ep.c_qp->PostWrite(3, data, RemoteAddr{s_mr.rkey, 0}));
  EXPECT_EQ(server_mem[0], std::byte{7});
}

TEST(FaultControllerTest, DropPlanFailsScriptedOrdinals) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  // Drop the first 2 ops, then every 3rd on the link.
  ep.fabric.faults().SetDropPlan("client", "server",
                                 FaultController::DropPlan{2, 3});

  std::vector<std::byte> data(8, std::byte{1});
  std::vector<bool> outcomes;
  for (uint64_t i = 0; i < 9; ++i) {
    outcomes.push_back(ep.c_qp->PostWrite(i, data, RemoteAddr{mr.rkey, 0}));
  }
  // Ordinals 0,1 (first=2) and 2,5,8 (every 3rd) fail.
  const std::vector<bool> expect{false, false, false, true, true,
                                 false, true,  true,  false};
  EXPECT_EQ(outcomes, expect);
  EXPECT_EQ(ep.fabric.faults().dropped_ops(), 5u);

  ep.fabric.faults().ClearLink("client", "server");
  EXPECT_TRUE(ep.c_qp->PostWrite(99, data, RemoteAddr{mr.rkey, 0}));
}

TEST(FaultControllerTest, FaultsOnOtherLinksDoNotInterfere) {
  Fabric fabric{FabricProfile::Instant()};
  auto a = fabric.CreateNode("a");
  auto b = fabric.CreateNode("b");
  auto c = fabric.CreateNode("c");
  auto ab_a = a->CreateQp(a->CreateCq(), a->CreateCq());
  auto ab_b = b->CreateQp(b->CreateCq(), b->CreateCq());
  QueuePair::Connect(ab_a, ab_b);
  auto ac_a = a->CreateQp(a->CreateCq(), a->CreateCq());
  auto ac_c = c->CreateQp(c->CreateCq(), c->CreateCq());
  QueuePair::Connect(ac_a, ac_c);

  std::vector<std::byte> b_mem(32), c_mem(32);
  const auto b_mr = b->RegisterMemory(b_mem);
  const auto c_mr = c->RegisterMemory(c_mem);

  fabric.faults().Partition("a", "b");
  std::vector<std::byte> data(8, std::byte{3});
  EXPECT_FALSE(ab_a->PostWrite(1, data, RemoteAddr{b_mr.rkey, 0}));
  EXPECT_TRUE(ac_a->PostWrite(2, data, RemoteAddr{c_mr.rkey, 0}));
  EXPECT_EQ(c_mem[0], std::byte{3});
}

TEST(FaultControllerTest, LinkLatencyStallsOpsButTheySucceed) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  std::vector<std::byte> data(8, std::byte{3});

  // Gray failure: the op stalls, then SUCCEEDS — no error completion,
  // nothing for a watchdog to see, only the elapsed time gives it away.
  ep.fabric.faults().SetLinkLatency("client", "server", 3'000, 1'000, 42);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ep.c_qp->PostWrite(1, data, RemoteAddr{mr.rkey, 0}));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::microseconds(2'500));
  EXPECT_EQ(server_mem[0], std::byte{3});
  EXPECT_GE(ep.fabric.faults().slowed_ops(), 1u);
  EXPECT_EQ(ep.fabric.faults().dropped_ops(), 0u);

  // Clearing the latency (base=0, jitter=0) restores full speed.
  ep.fabric.faults().SetLinkLatency("client", "server", 0, 0);
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ep.c_qp->PostWrite(2, data, RemoteAddr{mr.rkey, 0}));
  EXPECT_LT(std::chrono::steady_clock::now() - t1,
            std::chrono::microseconds(2'500));
}

TEST(FaultControllerTest, DegradedNodeSlowsEveryTouchingOp) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  std::vector<std::byte> client_mem(64, std::byte{0});
  const auto s_mr = ep.server->RegisterMemory(server_mem);
  const auto c_mr = ep.client->RegisterMemory(client_mem);
  std::vector<std::byte> data(8, std::byte{9});

  ep.fabric.faults().SetDegraded("server", 3'000);
  // Both directions stall — degradation is a node property, charged to
  // any op the node originates or terminates.
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ep.c_qp->PostWrite(1, data, RemoteAddr{s_mr.rkey, 0}));
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(2'500));
  t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ep.s_qp->PostWrite(2, data, RemoteAddr{c_mr.rkey, 0}));
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(2'500));
  EXPECT_EQ(server_mem[0], std::byte{9});
  EXPECT_EQ(client_mem[0], std::byte{9});
  EXPECT_GE(ep.fabric.faults().slowed_ops(), 2u);

  // SetDegraded(node, 0) lifts the fault.
  ep.fabric.faults().SetDegraded("server", 0);
  t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ep.c_qp->PostWrite(3, data, RemoteAddr{s_mr.rkey, 0}));
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(2'500));
}

TEST(FaultControllerTest, RestartNodeBumpsGenerationAndKillsState) {
  Fabric fabric{FabricProfile::Instant()};
  auto server = fabric.CreateNode("server");
  auto client = fabric.CreateNode("client");
  EXPECT_EQ(server->generation(), 1u);
  EXPECT_EQ(client->generation(), 1u);

  auto s_qp = server->CreateQp(server->CreateCq(), server->CreateCq());
  auto c_cq = client->CreateCq();
  auto c_qp = client->CreateQp(c_cq, client->CreateCq());
  QueuePair::Connect(s_qp, c_qp);

  std::vector<std::byte> arena(128, std::byte{0x5a});
  const auto mr = server->RegisterMemory(arena);
  std::vector<std::byte> local(16);
  ASSERT_TRUE(c_qp->PostRead(1, local, RemoteAddr{mr.rkey, 0}));
  WorkCompletion drain[4];
  c_cq->Poll(drain);  // discard the successful read's completion

  auto reborn = fabric.RestartNode("server");
  EXPECT_EQ(reborn->generation(), 2u);
  EXPECT_EQ(fabric.FindNode("server"), reborn);

  // The old incarnation's rkeys are dead, the client's QP got errored,
  // and its old QPN does not resolve on the new incarnation.
  EXPECT_FALSE(c_qp->PostRead(2, local, RemoteAddr{mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(c_cq->Poll({&wc, 1}), 1u);
  EXPECT_NE(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(reborn->FindQp(s_qp->qp_num()), nullptr);

  // Fresh wiring against the new incarnation works.
  auto s_qp2 = reborn->CreateQp(reborn->CreateCq(), reborn->CreateCq());
  auto c_qp2 = client->CreateQp(client->CreateCq(), client->CreateCq());
  QueuePair::Connect(s_qp2, c_qp2);
  std::vector<std::byte> arena2(128, std::byte{0x77});
  const auto mr2 = reborn->RegisterMemory(arena2);
  ASSERT_TRUE(c_qp2->PostRead(3, local, RemoteAddr{mr2.rkey, 0}));
  EXPECT_EQ(local[0], std::byte{0x77});
}

TEST(FabricProfileTest, DelayMath) {
  const auto ib = FabricProfile::InfiniBand100G();
  // 1 KB at 100 Gb/s ≈ 0.08 µs serialization + 1 µs base.
  EXPECT_NEAR(ib.OneWayUs(1024), 1.0 + 8192.0 / 100e3, 1e-9);
  const auto e1 = FabricProfile::Ethernet1G();
  // 1 MB at 1 Gb/s ≈ 8.4 ms dominates the 30 µs base latency.
  EXPECT_GT(e1.OneWayUs(1 << 20), 8000.0);
  // RTT symmetry.
  EXPECT_DOUBLE_EQ(ib.RoundTripUs(100, 100), 2 * ib.OneWayUs(100));
  // Ordering of small-message latencies: IB < 40G < 1G.
  const auto e40 = FabricProfile::Ethernet40G();
  EXPECT_LT(ib.OneWayUs(64), e40.OneWayUs(64));
  EXPECT_LT(e40.OneWayUs(64), e1.OneWayUs(64));
}

}  // namespace
}  // namespace catfish::rdma

#include "rdmasim/rdma.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace catfish::rdma {
namespace {

using namespace std::chrono_literals;

struct Endpoints {
  Fabric fabric{FabricProfile::Instant()};
  std::shared_ptr<SimNode> server = fabric.CreateNode("server");
  std::shared_ptr<SimNode> client = fabric.CreateNode("client");
  std::shared_ptr<CompletionQueue> s_send, s_recv, c_send, c_recv;
  std::shared_ptr<QueuePair> s_qp, c_qp;

  Endpoints() {
    s_send = server->CreateCq();
    s_recv = server->CreateCq();
    c_send = client->CreateCq();
    c_recv = client->CreateCq();
    s_qp = server->CreateQp(s_send, s_recv);
    c_qp = client->CreateQp(c_send, c_recv);
    QueuePair::Connect(s_qp, c_qp);
  }
};

TEST(RdmaSimTest, WriteMovesBytes) {
  Endpoints ep;
  std::vector<std::byte> server_mem(256, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> data(100);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  ASSERT_TRUE(ep.c_qp->PostWrite(11, data, RemoteAddr{mr.rkey, 50}));

  for (size_t i = 0; i < 100; ++i)
    EXPECT_EQ(server_mem[50 + i], static_cast<std::byte>(i));

  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_EQ(wc.opcode, Opcode::kWrite);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.byte_len, 100u);
}

TEST(RdmaSimTest, ReadBypassesRemoteCpu) {
  Endpoints ep;
  std::vector<std::byte> server_mem(256, std::byte{0x5A});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> local(64, std::byte{0});
  ASSERT_TRUE(ep.c_qp->PostRead(3, local, RemoteAddr{mr.rkey, 10}));
  for (const auto b : local) EXPECT_EQ(b, std::byte{0x5A});

  // The read is accounted as served by the server NIC — no server thread
  // ever ran (there are none in this test).
  const auto stats = ep.server->stats();
  EXPECT_EQ(stats.reads_served, 1u);
  EXPECT_EQ(stats.bytes_sent, 64u);
  EXPECT_EQ(ep.client->stats().bytes_received, 64u);
}

TEST(RdmaSimTest, WriteImmRaisesRemoteCompletion) {
  Endpoints ep;
  std::vector<std::byte> server_mem(128, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> data(8, std::byte{1});
  ASSERT_TRUE(ep.c_qp->PostWriteImm(7, data, RemoteAddr{mr.rkey, 0}, 0xabcd));

  // The responder's recv CQ got the IMM notification.
  const auto wc = ep.s_recv->Wait(100ms);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->opcode, Opcode::kRecvImm);
  EXPECT_EQ(wc->imm_data, 0xabcdu);
  EXPECT_EQ(wc->byte_len, 8u);
  EXPECT_EQ(wc->qp_num, ep.s_qp->qp_num());
  EXPECT_EQ(ep.server->stats().imm_delivered, 1u);
}

TEST(RdmaSimTest, UnsignaledWriteOmitsCompletion) {
  Endpoints ep;
  std::vector<std::byte> server_mem(128, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  std::vector<std::byte> data(8, std::byte{2});
  ASSERT_TRUE(ep.c_qp->PostWrite(1, data, RemoteAddr{mr.rkey, 0},
                                 /*signaled=*/false));
  EXPECT_EQ(ep.c_send->Depth(), 0u);
  EXPECT_EQ(server_mem[0], std::byte{2});
}

TEST(RdmaSimTest, OutOfBoundsAccessFails) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  std::vector<std::byte> data(65);
  EXPECT_FALSE(ep.c_qp->PostWrite(1, data, RemoteAddr{mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);

  std::vector<std::byte> dst(8);
  EXPECT_FALSE(ep.c_qp->PostRead(2, dst, RemoteAddr{mr.rkey, 60}));
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST(RdmaSimTest, BadRkeyFails) {
  Endpoints ep;
  std::vector<std::byte> dst(8);
  EXPECT_FALSE(ep.c_qp->PostRead(1, dst, RemoteAddr{99, 0}));
}

TEST(RdmaSimTest, ClosedQpFlushes) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  ep.c_qp->Close();
  EXPECT_FALSE(ep.c_qp->connected());
  EXPECT_FALSE(ep.s_qp->connected());

  std::vector<std::byte> data(8);
  EXPECT_FALSE(ep.c_qp->PostWrite(5, data, RemoteAddr{mr.rkey, 0}));
  WorkCompletion wc;
  ASSERT_EQ(ep.c_send->Poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kFlushed);
}

TEST(RdmaSimTest, CqWaitBlocksUntilPush) {
  Endpoints ep;
  std::vector<std::byte> server_mem(64, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);

  // No completion yet: Wait times out.
  EXPECT_FALSE(ep.s_recv->Wait(5ms).has_value());

  std::thread t([&] {
    std::this_thread::sleep_for(20ms);
    std::vector<std::byte> data(4, std::byte{9});
    ep.c_qp->PostWriteImm(1, data, RemoteAddr{mr.rkey, 0}, 42);
  });
  const auto wc = ep.s_recv->Wait(2s);
  t.join();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->imm_data, 42u);
}

TEST(RdmaSimTest, PerQpCompletionOrdering) {
  Endpoints ep;
  std::vector<std::byte> server_mem(1024, std::byte{0});
  const auto mr = ep.server->RegisterMemory(server_mem);
  std::vector<std::byte> local(16);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ep.c_qp->PostRead(i, local, RemoteAddr{mr.rkey, i * 16}));
  }
  WorkCompletion wcs[10];
  ASSERT_EQ(ep.c_send->Poll(wcs), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(wcs[i].wr_id, i);
}

TEST(FabricProfileTest, DelayMath) {
  const auto ib = FabricProfile::InfiniBand100G();
  // 1 KB at 100 Gb/s ≈ 0.08 µs serialization + 1 µs base.
  EXPECT_NEAR(ib.OneWayUs(1024), 1.0 + 8192.0 / 100e3, 1e-9);
  const auto e1 = FabricProfile::Ethernet1G();
  // 1 MB at 1 Gb/s ≈ 8.4 ms dominates the 30 µs base latency.
  EXPECT_GT(e1.OneWayUs(1 << 20), 8000.0);
  // RTT symmetry.
  EXPECT_DOUBLE_EQ(ib.RoundTripUs(100, 100), 2 * ib.OneWayUs(100));
  // Ordering of small-message latencies: IB < 40G < 1G.
  const auto e40 = FabricProfile::Ethernet40G();
  EXPECT_LT(ib.OneWayUs(64), e40.OneWayUs(64));
  EXPECT_LT(e40.OneWayUs(64), e1.OneWayUs(64));
}

}  // namespace
}  // namespace catfish::rdma

#include "des/resources.h"
#include "des/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace catfish::des {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(10, [&] { order.push_back(2); });
  s.At(5, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(SchedulerTest, EqualTimesRunInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(1.0, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, AfterIsRelative) {
  Scheduler s;
  double fired_at = -1;
  s.At(100, [&] { s.After(50, [&] { fired_at = s.now(); }); });
  s.Run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) s.After(1, tick);
  };
  s.After(1, tick);
  s.Run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

TEST(SchedulerTest, RunUntilStopsAtLimit) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.After(10, tick);
  };
  s.After(10, tick);
  s.Run(55);
  EXPECT_EQ(count, 5);
}

TEST(CpuPoolTest, SingleCoreSerializesJobs) {
  Scheduler s;
  CpuPool cpu(s, 1);
  std::vector<double> done_at;
  for (int i = 0; i < 3; ++i) {
    cpu.Submit(10, [&] { done_at.push_back(s.now()); });
  }
  s.Run();
  EXPECT_EQ(done_at, (std::vector<double>{10, 20, 30}));
  EXPECT_DOUBLE_EQ(cpu.busy_core_us(), 30.0);
}

TEST(CpuPoolTest, MultiCoreRunsInParallel) {
  Scheduler s;
  CpuPool cpu(s, 4);
  std::vector<double> done_at;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(10, [&] { done_at.push_back(s.now()); });
  }
  // A fifth job queues behind the first finisher.
  cpu.Submit(10, [&] { done_at.push_back(s.now()); });
  s.Run();
  ASSERT_EQ(done_at.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(done_at[i], 10.0);
  EXPECT_DOUBLE_EQ(done_at[4], 20.0);
}

TEST(CpuPoolTest, FcfsOrdering) {
  Scheduler s;
  CpuPool cpu(s, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    cpu.Submit(1, [&order, i] { order.push_back(i); });
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CpuPoolTest, WindowUtilization) {
  Scheduler s;
  CpuPool cpu(s, 2);
  cpu.Submit(10, [] {});
  s.Run();
  // 10 core-µs of work in a 10 µs window on 2 cores → 50%.
  EXPECT_DOUBLE_EQ(cpu.WindowUtilization(0.0, 10.0), 0.5);
}

TEST(LinkTest, SerializationPlusLatency) {
  Scheduler s;
  Link link(s, /*gbps=*/1.0, /*latency=*/30.0);
  // 1 Gb/s = 125 bytes/µs → 1250 bytes = 10 µs serialization.
  double delivered_at = -1;
  link.Transfer(1250, [&] { delivered_at = s.now(); });
  s.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 40.0);
  EXPECT_DOUBLE_EQ(link.busy_us(), 10.0);
  EXPECT_EQ(link.bytes_transferred(), 1250u);
}

TEST(LinkTest, ConcurrentTransfersQueueOnSerialization) {
  Scheduler s;
  Link link(s, 1.0, 0.0);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    link.Transfer(125, [&] { done.push_back(s.now()); });  // 1 µs each
  }
  s.Run();
  EXPECT_EQ(done, (std::vector<double>{1, 2, 3}));
}

TEST(LinkTest, LatencyPipelinesAcrossTransfers) {
  Scheduler s;
  Link link(s, 1.0, 100.0);
  std::vector<double> done;
  link.Transfer(125, [&] { done.push_back(s.now()); });
  link.Transfer(125, [&] { done.push_back(s.now()); });
  s.Run();
  // Serialization queues (1 µs apart) but propagation overlaps.
  EXPECT_DOUBLE_EQ(done[0], 101.0);
  EXPECT_DOUBLE_EQ(done[1], 102.0);
}

TEST(LinkTest, ZeroBandwidthMeansNoSerialization) {
  Scheduler s;
  Link link(s, 0.0, 5.0);
  double at = -1;
  link.Transfer(1 << 20, [&] { at = s.now(); });
  s.Run();
  EXPECT_DOUBLE_EQ(at, 5.0);
}

TEST(LinkTest, IdleGapDoesNotAccumulateBusy) {
  Scheduler s;
  Link link(s, 1.0, 0.0);
  link.Transfer(125, [] {});
  s.Run();
  // Transfer again after an idle gap.
  s.At(100, [&] { link.Transfer(125, [] {}); });
  s.Run();
  EXPECT_DOUBLE_EQ(link.busy_us(), 2.0);
}

}  // namespace
}  // namespace catfish::des

#include "telemetry/trace_wire.h"

#include <gtest/gtest.h>

#include <string>

namespace catfish::telemetry {
namespace {

Trace MakeServerTree() {
  Trace t("server.request", 42, 100);
  const SpanId dequeue = t.StartSpan(t.root(), "dequeue", 100);
  t.EndSpan(dequeue, 110);
  const SpanId traverse = t.StartSpan(t.root(), "traverse", 110);
  t.SetAttr(traverse, "nodes", 37);
  t.SetAttr(traverse, "results", 5);
  t.EndSpan(traverse, 230);
  const SpanId respond = t.StartSpan(t.root(), "respond", 230);
  t.EndSpan(respond, 250);
  t.SetAttr(t.root(), "req_id", 7);
  t.EndSpan(t.root(), 255);
  return t;
}

TEST(TraceWireTest, RoundTripPreservesTreeTimesAndAttrs) {
  const Trace t = MakeServerTree();
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  const auto back = DecodeTrace(wire);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->id(), 42u);
  ASSERT_EQ(back->span_count(), t.span_count());
  for (SpanId i = 0; i < t.span_count(); ++i) {
    EXPECT_EQ(back->span(i).name, t.span(i).name);
    EXPECT_EQ(back->span(i).start_us, t.span(i).start_us);
    EXPECT_EQ(back->span(i).end_us, t.span(i).end_us);
    EXPECT_EQ(back->span(i).children, t.span(i).children);
    EXPECT_EQ(back->span(i).attrs, t.span(i).attrs);
  }
  const Span* traverse = back->Find("traverse");
  ASSERT_NE(traverse, nullptr);
  EXPECT_EQ(traverse->AttrOr("nodes"), 37);
}

TEST(TraceWireTest, EncodeAppendsAndReusesCapacity) {
  const Trace t = MakeServerTree();
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  const size_t one = wire.size();
  ASSERT_GT(one, 0u);

  // Appends after existing content rather than clobbering it.
  EncodeTrace(t, wire);
  EXPECT_EQ(wire.size(), 2 * one);
  EXPECT_TRUE(DecodeTrace(std::span(wire).subspan(one)).has_value());

  // A cleared-but-reserved buffer round-trips without growing.
  wire.clear();
  const size_t cap = wire.capacity();
  EncodeTrace(t, wire);
  EXPECT_EQ(wire.capacity(), cap);
}

TEST(TraceWireTest, OversizedTraceTruncatesKeepingParentLinksValid) {
  Trace t("big", 7, 0);
  // Depth-first growth: span i's parent is span i-1, far past the cap.
  SpanId parent = t.root();
  for (int i = 0; i < 400; ++i) {
    parent = t.StartSpan(parent, "hop", static_cast<uint64_t>(i));
  }
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  const auto back = DecodeTrace(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->span_count(), kTraceWireMaxSpans);
  // Every surviving span's parent survived too (decode validates this,
  // but assert the shape directly: child ids only reference priors).
  for (SpanId i = 0; i < back->span_count(); ++i) {
    for (const SpanId c : back->span(i).children) {
      EXPECT_GT(c, i);
      EXPECT_LT(c, back->span_count());
    }
  }
}

TEST(TraceWireTest, LongNamesAndExcessAttrsAreClamped) {
  Trace t(std::string(200, 'n'), 9, 0);
  for (int i = 0; i < 40; ++i) {
    t.SetAttr(t.root(), "attr_" + std::to_string(i), i);
  }
  t.EndSpan(t.root(), 10);
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  const auto back = DecodeTrace(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->span(0).name.size(), kTraceWireMaxName);
  EXPECT_EQ(back->span(0).attrs.size(), kTraceWireMaxAttrs);
}

TEST(TraceWireTest, TruncatedBlobsDecodeToNulloptAtEveryLength) {
  const Trace t = MakeServerTree();
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(DecodeTrace(std::span(wire).first(len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(TraceWireTest, TrailingBytesRejected) {
  const Trace t = MakeServerTree();
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  wire.push_back(std::byte{0});
  EXPECT_FALSE(DecodeTrace(wire).has_value());
}

TEST(TraceWireTest, HostileCountsRejected) {
  const Trace t = MakeServerTree();
  std::vector<std::byte> wire;
  EncodeTrace(t, wire);
  // span_count lives at bytes [8, 12); patch it over the cap.
  auto hostile = wire;
  hostile[8] = std::byte{0xff};
  hostile[9] = std::byte{0xff};
  hostile[10] = std::byte{0xff};
  hostile[11] = std::byte{0x7f};
  EXPECT_FALSE(DecodeTrace(hostile).has_value());

  // A parent index pointing at a later span is structurally invalid.
  // Span 0's parent field sits right after its name: 8 + 4 + 1 + len.
  const size_t parent_off = 8 + 4 + 1 + t.span(0).name.size();
  hostile = wire;
  hostile[parent_off] = std::byte{0x07};  // root claims parent 7
  hostile[parent_off + 1] = std::byte{0};
  hostile[parent_off + 2] = std::byte{0};
  hostile[parent_off + 3] = std::byte{0};
  EXPECT_FALSE(DecodeTrace(hostile).has_value());
}

}  // namespace
}  // namespace catfish::telemetry

// Crash-point matrix: run a scripted write burst through the durable
// write path, then simulate a crash after EVERY fsync boundary (with and
// without a torn unsynced tail), recover into a fresh arena, and diff
// the recovered tree against a brute-force oracle of the writes that
// were durable at that boundary. One Sync per acked write means boundary
// k == "the crash happened right after write k was acked" — the
// recovered state must contain exactly writes 1..k, and a resend of
// write k against the recovered server must dedup, not reapply.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "durable/manager.h"
#include "durable/storage.h"
#include "durable/wal.h"
#include "geo/rect.h"
#include "rtree/node.h"
#include "rtree/rstar.h"
#include "test_util.h"

namespace catfish::durable {
namespace {

constexpr size_t kChunks = 512;
constexpr uint64_t kGen = 1;

struct ScriptedOp {
  WalOp op = WalOp::kInsert;
  geo::Rect rect;
  uint64_t rect_id = 0;
};

/// Deterministic insert-heavy burst with interleaved deletes of earlier
/// survivors, mirroring what a client write session produces.
std::vector<ScriptedOp> MakeScript(size_t count, uint64_t seed) {
  std::vector<ScriptedOp> script;
  testutil::BruteForceIndex live;
  Xoshiro256 rng(seed);
  uint64_t next_id = 0;
  while (script.size() < count) {
    if (live.size() > 4 && rng.NextBounded(4) == 0) {
      const auto victim = live.items()[rng.NextBounded(live.size())];
      script.push_back({WalOp::kDelete, victim.first, victim.second});
      live.Delete(victim.first, victim.second);
    } else {
      const geo::Rect r = testutil::RandomRect(rng, 0.05);
      script.push_back({WalOp::kInsert, r, next_id});
      live.Insert(r, next_id);
      ++next_id;
    }
  }
  return script;
}

void ApplyToManager(DurabilityManager& mgr, rtree::RStarTree& tree,
                    const std::vector<ScriptedOp>& script) {
  for (size_t i = 0; i < script.size(); ++i) {
    const ScriptedOp& op = script[i];
    const uint64_t req_id = i + 1;
    if (op.op == WalOp::kInsert) {
      ASSERT_TRUE(mgr.ExecuteInsert(tree, kGen, req_id, op.rect,
                                    op.rect_id).ok);
    } else {
      ASSERT_TRUE(mgr.ExecuteDelete(tree, kGen, req_id, op.rect,
                                    op.rect_id).ok);
    }
  }
}

/// The oracle state after the first `count` scripted ops.
std::vector<uint64_t> OracleIds(const std::vector<ScriptedOp>& script,
                                size_t count) {
  testutil::BruteForceIndex oracle;
  for (size_t i = 0; i < count; ++i) {
    if (script[i].op == WalOp::kInsert) {
      oracle.Insert(script[i].rect, script[i].rect_id);
    } else {
      oracle.Delete(script[i].rect, script[i].rect_id);
    }
  }
  return oracle.Search(geo::Rect{0, 0, 1, 1});
}

std::vector<uint64_t> ScanIds(rtree::RStarTree& tree) {
  std::vector<rtree::Entry> out;
  tree.Search(geo::Rect{0, 0, 1, 1}, out);
  std::vector<uint64_t> ids;
  for (const auto& e : out) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(CrashPointMatrixTest, EveryFsyncBoundaryRecoversToOracle) {
  const auto script = MakeScript(48, /*seed=*/101);
  auto wal_disk = std::make_shared<MemLogStorage>();
  auto ckpt_disk = std::make_shared<MemCheckpointStore>();
  {
    DurabilityManager mgr(wal_disk, ckpt_disk);
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr.Recover(arena);
    ApplyToManager(mgr, tree, script);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Single-threaded writes: one sync boundary per acked write.
  ASSERT_EQ(wal_disk->sync_count(), script.size());

  for (size_t boundary = 0; boundary <= script.size(); ++boundary) {
    for (const size_t torn : {size_t{0}, size_t{13}}) {
      SCOPED_TRACE("boundary=" + std::to_string(boundary) +
                   " torn=" + std::to_string(torn));
      std::shared_ptr<MemLogStorage> crashed =
          wal_disk->CrashClone(boundary, torn);
      DurabilityManager mgr(crashed, ckpt_disk);
      rtree::NodeArena arena(rtree::kChunkSize, kChunks);
      rtree::RStarTree tree = mgr.Recover(arena);
      tree.CheckInvariants();

      const RecoveryReport& report = mgr.recovery_report();
      EXPECT_EQ(report.records_replayed, boundary);
      const size_t total_bytes = boundary * kWalFrameBytes;
      const size_t expect_torn =
          std::min(torn, wal_disk->size() - total_bytes);
      EXPECT_EQ(report.tail_bytes_truncated, expect_torn);
      EXPECT_EQ(ScanIds(tree), OracleIds(script, boundary));

      if (boundary == 0) continue;
      // Exactly-once across the crash: the client resends the write it
      // never saw acked (or whose ack raced the crash) — the recovered
      // server must recognize it instead of applying it twice.
      const ScriptedOp& last = script[boundary - 1];
      const auto resend =
          last.op == WalOp::kInsert
              ? mgr.ExecuteInsert(tree, kGen, boundary, last.rect,
                                  last.rect_id)
              : mgr.ExecuteDelete(tree, kGen, boundary, last.rect,
                                  last.rect_id);
      EXPECT_TRUE(resend.duplicate);
      EXPECT_TRUE(resend.ok);
      EXPECT_EQ(ScanIds(tree), OracleIds(script, boundary));
    }
  }
}

TEST(CrashPointMatrixTest, BoundariesAfterCheckpointRecoverToOracle) {
  // Same matrix with a checkpoint mid-burst: crashes after the
  // checkpoint must restore the image and replay only the log tail.
  const auto script = MakeScript(60, /*seed=*/202);
  constexpr size_t kCheckpointAt = 40;
  auto wal_disk = std::make_shared<MemLogStorage>();
  auto ckpt_disk = std::make_shared<MemCheckpointStore>();
  {
    DurabilityManager mgr(wal_disk, ckpt_disk);
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr.Recover(arena);
    ApplyToManager(mgr, tree,
                   {script.begin(), script.begin() + kCheckpointAt});
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(mgr.Checkpoint(tree), kCheckpointAt);
    for (size_t i = kCheckpointAt; i < script.size(); ++i) {
      const ScriptedOp& op = script[i];
      const auto res =
          op.op == WalOp::kInsert
              ? mgr.ExecuteInsert(tree, kGen, i + 1, op.rect, op.rect_id)
              : mgr.ExecuteDelete(tree, kGen, i + 1, op.rect, op.rect_id);
      ASSERT_TRUE(res.ok);
    }
  }
  // Checkpoint truncation resets the sync history: boundary 1 is the
  // truncation itself (empty log), boundary 1 + k covers k tail writes.
  const size_t tail_writes = script.size() - kCheckpointAt;
  ASSERT_EQ(wal_disk->sync_count(), tail_writes + 1);

  for (size_t boundary = 1; boundary <= tail_writes + 1; ++boundary) {
    SCOPED_TRACE("boundary=" + std::to_string(boundary));
    std::shared_ptr<MemLogStorage> crashed = wal_disk->CrashClone(boundary);
    DurabilityManager mgr(crashed, ckpt_disk);
    rtree::NodeArena arena(rtree::kChunkSize, kChunks);
    rtree::RStarTree tree = mgr.Recover(arena);
    tree.CheckInvariants();

    const RecoveryReport& report = mgr.recovery_report();
    EXPECT_TRUE(report.checkpoint_loaded);
    EXPECT_EQ(report.checkpoint_applied_lsn, kCheckpointAt);
    EXPECT_EQ(report.records_replayed, boundary - 1);
    EXPECT_EQ(ScanIds(tree),
              OracleIds(script, kCheckpointAt + (boundary - 1)));
    // The LSN sequence continues from the recovered position.
    EXPECT_EQ(mgr.wal().last_lsn(), kCheckpointAt + (boundary - 1));
  }
}

}  // namespace
}  // namespace catfish::durable

// Tests of the execution-driven cluster simulation: conservation laws,
// resource accounting, and the qualitative shapes the paper's figures
// depend on (CPU-bound vs network-bound regimes, scheme orderings).
#include "model/cluster_sim.h"

#include <gtest/gtest.h>

#include <memory>

#include "rtree/bulk_load.h"
#include "workload/generators.h"

namespace catfish::model {
namespace {

struct Testbed {
  std::unique_ptr<rtree::NodeArena> arena;
  std::unique_ptr<rtree::RStarTree> tree;

  explicit Testbed(size_t n = 50'000, double max_edge = 1e-4) {
    arena = std::make_unique<rtree::NodeArena>(rtree::kChunkSize, 1 << 15);
    const auto items = workload::UniformDataset(n, max_edge, 99);
    tree = std::make_unique<rtree::RStarTree>(
        rtree::BulkLoad(*arena, items));
  }
};

ClusterConfig BaseConfig(Scheme scheme, size_t clients, double scale,
                         uint64_t reqs = 200) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.num_clients = clients;
  cfg.requests_per_client = reqs;
  cfg.workload.dist = workload::RequestGen::ScaleDist::kFixed;
  cfg.workload.scale = scale;
  cfg.seed = 42;
  if (scheme == Scheme::kFastMessaging || scheme == Scheme::kRdmaOffloading) {
    // The FaRM-style baselines: polling server, single-issue reads.
    cfg.notify = NotifyMode::kPolling;
    cfg.multi_issue = false;
  }
  return cfg;
}

TEST(ClusterSimTest, CompletesAllRequests) {
  Testbed tb;
  for (const Scheme s : {Scheme::kTcp1G, Scheme::kTcp40G,
                         Scheme::kFastMessaging, Scheme::kRdmaOffloading,
                         Scheme::kCatfish}) {
    ClusterSim sim(*tb.tree, BaseConfig(s, 8, 1e-4, 100));
    const auto r = sim.Run();
    EXPECT_EQ(r.completed, 800u) << SchemeName(s);
    EXPECT_GT(r.duration_us, 0.0);
    EXPECT_GT(r.throughput_kops, 0.0);
    EXPECT_EQ(r.latency_us.count(), 800u);
  }
}

TEST(ClusterSimTest, DeterministicForSameSeed) {
  Testbed tb;
  ClusterSim a(*tb.tree, BaseConfig(Scheme::kCatfish, 8, 1e-4, 100));
  ClusterSim b(*tb.tree, BaseConfig(Scheme::kCatfish, 8, 1e-4, 100));
  const auto ra = a.Run();
  const auto rb = b.Run();
  EXPECT_DOUBLE_EQ(ra.duration_us, rb.duration_us);
  EXPECT_EQ(ra.fast_searches, rb.fast_searches);
  EXPECT_EQ(ra.offloaded_searches, rb.offloaded_searches);
  EXPECT_EQ(ra.rdma_reads, rb.rdma_reads);
}

TEST(ClusterSimTest, OffloadingBypassesServerCpu) {
  Testbed tb;
  ClusterSim sim(*tb.tree,
                 BaseConfig(Scheme::kRdmaOffloading, 16, 1e-4, 100));
  const auto r = sim.Run();
  EXPECT_EQ(r.offloaded_searches, 1600u);
  EXPECT_EQ(r.fast_searches, 0u);
  EXPECT_GT(r.rdma_reads, r.offloaded_searches);  // ≥ height per search
  // No search touched a worker core.
  EXPECT_DOUBLE_EQ(r.server_cpu_util, 0.0);
}

TEST(ClusterSimTest, FastMessagingUsesServerCpu) {
  Testbed tb;
  ClusterSim sim(*tb.tree, BaseConfig(Scheme::kFastMessaging, 16, 1e-4, 100));
  const auto r = sim.Run();
  EXPECT_EQ(r.fast_searches, 1600u);
  EXPECT_EQ(r.rdma_reads, 0u);
  EXPECT_GT(r.server_cpu_util, 0.0);
}

TEST(ClusterSimTest, CpuBoundRegimeSaturatesCpuNotNetwork) {
  // Fig 2(b): small-scope searches on TCP — CPU far busier than the wire.
  Testbed tb;
  auto cfg = BaseConfig(Scheme::kTcp40G, 64, 1e-5, 150);
  ClusterSim sim(*tb.tree, cfg);
  const auto r = sim.Run();
  const double bw_frac = (r.server_tx_gbps + r.server_rx_gbps) / 40.0;
  EXPECT_GT(r.server_cpu_util, 0.5);
  EXPECT_LT(bw_frac, r.server_cpu_util / 2);
}

TEST(ClusterSimTest, NetworkBoundRegimeSaturatesLinkNotCpu) {
  // Fig 2(a): large-scope searches on 1 GbE — the wire saturates first.
  // (The test dataset is 50 k rects, not the paper's 2 M, so the "large
  // scope" scale is raised to keep result sets response-heavy.)
  Testbed tb;
  auto cfg = BaseConfig(Scheme::kTcp1G, 16, 0.05, 60);
  ClusterSim sim(*tb.tree, cfg);
  const auto r = sim.Run();
  const double bw_frac = (r.server_tx_gbps + r.server_rx_gbps) / 1.0;
  EXPECT_GT(bw_frac, 0.7);
  EXPECT_LT(r.server_cpu_util, 0.5);
}

TEST(ClusterSimTest, EventBeatsPollingUnderOversubscription) {
  // Fig 7: with clients ≫ cores, event-driven latency ≪ polling latency.
  Testbed tb;
  auto poll = BaseConfig(Scheme::kFastMessaging, 96, 1e-5, 60);
  poll.notify = NotifyMode::kPolling;
  auto event = BaseConfig(Scheme::kFastMessaging, 96, 1e-5, 60);
  event.notify = NotifyMode::kEventDriven;
  const auto rp = ClusterSim(*tb.tree, poll).Run();
  const auto re = ClusterSim(*tb.tree, event).Run();
  EXPECT_GT(rp.latency_us.mean(), 1.5 * re.latency_us.mean());
}

TEST(ClusterSimTest, MultiIssueBeatsSingleIssue) {
  // Fig 8: one client, multi-issue reduces offloaded search latency.
  Testbed tb;
  auto single = BaseConfig(Scheme::kRdmaOffloading, 1, 1e-2, 150);
  single.multi_issue = false;
  auto multi = BaseConfig(Scheme::kRdmaOffloading, 1, 1e-2, 150);
  multi.multi_issue = true;
  const auto rs = ClusterSim(*tb.tree, single).Run();
  const auto rm = ClusterSim(*tb.tree, multi).Run();
  EXPECT_LT(rm.latency_us.mean(), rs.latency_us.mean());
}

TEST(ClusterSimTest, DoorbellBatchingReducesDoorbellsNotReads) {
  // The batching ablation's invariant: chaining WRs changes how READs
  // are issued and reaped, never how many. With no inserts there are no
  // version retries, so the unbatched run must show exactly one doorbell
  // and one reap per READ, and the batched run strictly fewer of both at
  // an identical READ count — and no latency regression.
  Testbed tb;
  auto batched = BaseConfig(Scheme::kRdmaOffloading, 2, 1e-2, 100);
  batched.multi_issue = true;
  batched.doorbell_batching = true;
  auto unbatched = batched;
  unbatched.doorbell_batching = false;
  const auto rb = ClusterSim(*tb.tree, batched).Run();
  const auto ru = ClusterSim(*tb.tree, unbatched).Run();

  EXPECT_EQ(rb.rdma_reads, ru.rdma_reads);
  EXPECT_EQ(ru.doorbells, ru.rdma_reads);
  EXPECT_EQ(ru.polls, ru.rdma_reads);
  EXPECT_LT(rb.doorbells, ru.doorbells);
  EXPECT_LT(rb.polls, ru.polls);
  EXPECT_LE(rb.latency_us.mean(), ru.latency_us.mean());

  // A chain limit of 1 still pays one doorbell per WR.
  auto limit1 = batched;
  limit1.doorbell_batch_limit = 1;
  const auto r1 = ClusterSim(*tb.tree, limit1).Run();
  EXPECT_EQ(r1.doorbells, r1.rdma_reads);
  EXPECT_EQ(r1.rdma_reads, rb.rdma_reads);
}

TEST(ClusterSimTest, CatfishAdaptsUnderCpuSaturation) {
  // CPU-bound + many clients: Catfish must offload a meaningful share
  // and beat pure fast messaging on throughput (Fig 10a shape).
  Testbed tb;
  auto catfish = BaseConfig(Scheme::kCatfish, 128, 1e-5, 120);
  auto fast = BaseConfig(Scheme::kCatfish, 128, 1e-5, 120);
  fast.scheme = Scheme::kFastMessaging;
  fast.notify = NotifyMode::kEventDriven;  // even the enhanced variant
  const auto rc = ClusterSim(*tb.tree, catfish).Run();
  const auto rf = ClusterSim(*tb.tree, fast).Run();
  EXPECT_GT(rc.offloaded_searches, 0u);
  EXPECT_GT(rc.fast_searches, 0u);
  EXPECT_GT(rc.throughput_kops, rf.throughput_kops);
}

TEST(ClusterSimTest, CatfishStaysFastWhenNetworkBound) {
  // Network-bound: server CPU never crosses T, so Catfish should almost
  // never offload (offloading would burn even more bandwidth).
  Testbed tb;
  auto cfg = BaseConfig(Scheme::kCatfish, 32, 1e-2, 80);
  ClusterSim sim(*tb.tree, cfg);
  const auto r = sim.Run();
  EXPECT_LT(r.offloaded_searches, r.fast_searches / 10);
}

TEST(ClusterSimTest, InsertsApplyToRealTree) {
  Testbed tb(20'000);
  const uint64_t before = tb.tree->size();
  auto cfg = BaseConfig(Scheme::kCatfish, 8, 1e-4, 100);
  cfg.workload.insert_ratio = 0.1;
  ClusterSim sim(*tb.tree, cfg);
  const auto r = sim.Run();
  EXPECT_GT(r.inserts, 0u);
  EXPECT_EQ(tb.tree->size(), before + r.inserts);
  EXPECT_GT(r.insert_latency_us.count(), 0u);
  tb.tree->CheckInvariants();
}

TEST(ClusterSimTest, HybridOffloadingSeesVersionRetries) {
  Testbed tb(20'000);
  auto cfg = BaseConfig(Scheme::kRdmaOffloading, 64, 1e-4, 100);
  cfg.workload.insert_ratio = 0.1;
  ClusterSim sim(*tb.tree, cfg);
  const auto r = sim.Run();
  EXPECT_GT(r.version_retries, 0u);
}

TEST(ClusterSimTest, MoreClientsMoreThroughputUntilSaturation) {
  Testbed tb;
  double last = 0.0;
  for (const size_t clients : {4, 16, 64}) {
    ClusterSim sim(*tb.tree,
                   BaseConfig(Scheme::kCatfish, clients, 1e-4, 100));
    const auto r = sim.Run();
    EXPECT_GT(r.throughput_kops, last);
    last = r.throughput_kops;
  }
}

}  // namespace
}  // namespace catfish::model

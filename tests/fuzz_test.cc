// Randomized operation-sequence fuzzing for all three structures, with
// oracle comparison and invariant checks interleaved throughout the
// sequence (not only at the end) so a corrupting operation is caught
// near its cause.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "btree/bplus.h"
#include "cuckoo/cuckoo.h"
#include "rtree/rstar.h"
#include "test_util.h"

namespace catfish {
namespace {

using testutil::BruteForceIndex;
using testutil::RandomRect;

struct FuzzParam {
  uint64_t seed;
  int ops;
  double insert_weight;
  double delete_weight;  // remainder = searches
};

class RTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RTreeFuzz, OpSequenceKeepsOracleAgreement) {
  const auto p = GetParam();
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 14);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  BruteForceIndex oracle;
  Xoshiro256 rng(p.seed);
  uint64_t next_id = 0;

  for (int op = 0; op < p.ops; ++op) {
    const double roll = rng.NextDouble();
    if (roll < p.insert_weight || oracle.size() == 0) {
      const auto r = RandomRect(rng, 0.02);
      tree.Insert(r, next_id);
      oracle.Insert(r, next_id);
      ++next_id;
    } else if (roll < p.insert_weight + p.delete_weight) {
      const auto& [r, id] = oracle.items()[rng.NextBounded(oracle.size())];
      const geo::Rect rect = r;
      const uint64_t del = id;
      ASSERT_TRUE(tree.Delete(rect, del)) << "op " << op;
      ASSERT_TRUE(oracle.Delete(rect, del));
    } else {
      const auto q = RandomRect(rng, 0.05);
      std::vector<rtree::Entry> hits;
      tree.Search(q, hits);
      std::vector<uint64_t> ids;
      for (const auto& e : hits) ids.push_back(e.id);
      std::sort(ids.begin(), ids.end());
      ASSERT_EQ(ids, oracle.Search(q)) << "op " << op;
    }
    ASSERT_EQ(tree.size(), oracle.size());
    if (op % 500 == 499) tree.CheckInvariants();
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, RTreeFuzz,
    ::testing::Values(FuzzParam{101, 4000, 0.70, 0.10},
                      FuzzParam{102, 4000, 0.45, 0.35},
                      FuzzParam{103, 4000, 0.34, 0.33},
                      FuzzParam{104, 2500, 0.52, 0.45},
                      FuzzParam{105, 4000, 0.85, 0.05}));

class BTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BTreeFuzz, OpSequenceKeepsOracleAgreement) {
  const auto p = GetParam();
  rtree::NodeArena arena(btree::kChunkSize, 1 << 14);
  btree::BPlusTree tree = btree::BPlusTree::Create(arena);
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(p.seed);

  const auto random_present_key = [&]() {
    auto it = oracle.lower_bound(rng.NextBounded(1u << 24));
    if (it == oracle.end()) it = oracle.begin();
    return it->first;
  };

  for (int op = 0; op < p.ops; ++op) {
    const double roll = rng.NextDouble();
    if (roll < p.insert_weight || oracle.empty()) {
      const uint64_t k = 1 + rng.NextBounded(1u << 24);
      const uint64_t v = rng.Next();
      tree.Put(k, v);
      oracle[k] = v;
    } else if (roll < p.insert_weight + p.delete_weight) {
      const uint64_t k = random_present_key();
      ASSERT_TRUE(tree.Erase(k)) << "op " << op;
      oracle.erase(k);
    } else if (roll < p.insert_weight + p.delete_weight + 0.15) {
      // Range scan.
      const uint64_t lo = rng.NextBounded(1u << 24);
      const uint64_t hi = lo + rng.NextBounded(1u << 16);
      std::vector<btree::KeyValue> got;
      tree.Scan(lo, hi, got);
      auto it = oracle.lower_bound(lo);
      size_t i = 0;
      for (; it != oracle.end() && it->first <= hi; ++it, ++i) {
        ASSERT_LT(i, got.size()) << "op " << op;
        ASSERT_EQ(got[i].key, it->first);
      }
      ASSERT_EQ(i, got.size()) << "op " << op;
    } else {
      const uint64_t k = 1 + rng.NextBounded(1u << 24);
      const auto it = oracle.find(k);
      const auto got = tree.Get(k);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << op;
      if (got) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(tree.size(), oracle.size());
    if (op % 1000 == 999) tree.CheckInvariants();
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, BTreeFuzz,
    ::testing::Values(FuzzParam{201, 6000, 0.60, 0.15},
                      FuzzParam{202, 6000, 0.40, 0.35},
                      FuzzParam{203, 4000, 0.80, 0.05}));

class CuckooFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(CuckooFuzz, OpSequenceKeepsOracleAgreement) {
  const auto p = GetParam();
  rtree::NodeArena arena(cuckoo::kChunkSize, 1 << 10);
  cuckoo::CuckooTable table =
      cuckoo::CuckooTable::Create(arena, 4096, p.seed);
  std::unordered_map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(p.seed);
  std::vector<uint64_t> keys;  // sampling pool of present keys

  for (int op = 0; op < p.ops; ++op) {
    const double roll = rng.NextDouble();
    if (roll < p.insert_weight || oracle.empty()) {
      // Cap load below the displacement ceiling.
      if (oracle.size() <
          table.capacity() * 8 / 10) {
        const uint64_t k = 1 + rng.NextBounded(1u << 28);
        const uint64_t v = rng.Next();
        ASSERT_TRUE(table.Put(k, v)) << "op " << op;
        if (oracle.emplace(k, v).second) {
          keys.push_back(k);
        } else {
          oracle[k] = v;
        }
      }
    } else if (roll < p.insert_weight + p.delete_weight && !keys.empty()) {
      const size_t pick = rng.NextBounded(keys.size());
      const uint64_t k = keys[pick];
      keys[pick] = keys.back();
      keys.pop_back();
      if (oracle.erase(k)) {
        ASSERT_TRUE(table.Erase(k)) << "op " << op;
      }
    } else {
      const uint64_t k = 1 + rng.NextBounded(1u << 28);
      const auto it = oracle.find(k);
      const auto got = table.Get(k);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << op;
      if (got) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(table.size(), oracle.size()) << "op " << op;
  }
  // Full sweep at the end.
  for (const auto& [k, v] : oracle) ASSERT_EQ(table.Get(k), v);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, CuckooFuzz,
    ::testing::Values(FuzzParam{301, 8000, 0.60, 0.20},
                      FuzzParam{302, 8000, 0.45, 0.40},
                      FuzzParam{303, 6000, 0.90, 0.05}));

}  // namespace
}  // namespace catfish

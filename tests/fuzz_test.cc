// Randomized operation-sequence fuzzing for all three structures, with
// oracle comparison and invariant checks interleaved throughout the
// sequence (not only at the end) so a corrupting operation is caught
// near its cause.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <unordered_map>

#include "btree/bplus.h"
#include "catfish/bootstrap.h"
#include "cuckoo/cuckoo.h"
#include "durable/wal.h"
#include "msg/protocol.h"
#include "msg/repl.h"
#include "rtree/rstar.h"
#include "shard/partition.h"
#include "test_util.h"

namespace catfish {
namespace {

using testutil::BruteForceIndex;
using testutil::RandomRect;

struct FuzzParam {
  uint64_t seed;
  int ops;
  double insert_weight;
  double delete_weight;  // remainder = searches
};

class RTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RTreeFuzz, OpSequenceKeepsOracleAgreement) {
  const auto p = GetParam();
  rtree::NodeArena arena(rtree::kChunkSize, 1 << 14);
  rtree::RStarTree tree = rtree::RStarTree::Create(arena);
  BruteForceIndex oracle;
  Xoshiro256 rng(p.seed);
  uint64_t next_id = 0;

  for (int op = 0; op < p.ops; ++op) {
    const double roll = rng.NextDouble();
    if (roll < p.insert_weight || oracle.size() == 0) {
      const auto r = RandomRect(rng, 0.02);
      tree.Insert(r, next_id);
      oracle.Insert(r, next_id);
      ++next_id;
    } else if (roll < p.insert_weight + p.delete_weight) {
      const auto& [r, id] = oracle.items()[rng.NextBounded(oracle.size())];
      const geo::Rect rect = r;
      const uint64_t del = id;
      ASSERT_TRUE(tree.Delete(rect, del)) << "op " << op;
      ASSERT_TRUE(oracle.Delete(rect, del));
    } else {
      const auto q = RandomRect(rng, 0.05);
      std::vector<rtree::Entry> hits;
      tree.Search(q, hits);
      std::vector<uint64_t> ids;
      for (const auto& e : hits) ids.push_back(e.id);
      std::sort(ids.begin(), ids.end());
      ASSERT_EQ(ids, oracle.Search(q)) << "op " << op;
    }
    ASSERT_EQ(tree.size(), oracle.size());
    if (op % 500 == 499) tree.CheckInvariants();
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, RTreeFuzz,
    ::testing::Values(FuzzParam{101, 4000, 0.70, 0.10},
                      FuzzParam{102, 4000, 0.45, 0.35},
                      FuzzParam{103, 4000, 0.34, 0.33},
                      FuzzParam{104, 2500, 0.52, 0.45},
                      FuzzParam{105, 4000, 0.85, 0.05}));

class BTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BTreeFuzz, OpSequenceKeepsOracleAgreement) {
  const auto p = GetParam();
  rtree::NodeArena arena(btree::kChunkSize, 1 << 14);
  btree::BPlusTree tree = btree::BPlusTree::Create(arena);
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(p.seed);

  const auto random_present_key = [&]() {
    auto it = oracle.lower_bound(rng.NextBounded(1u << 24));
    if (it == oracle.end()) it = oracle.begin();
    return it->first;
  };

  for (int op = 0; op < p.ops; ++op) {
    const double roll = rng.NextDouble();
    if (roll < p.insert_weight || oracle.empty()) {
      const uint64_t k = 1 + rng.NextBounded(1u << 24);
      const uint64_t v = rng.Next();
      tree.Put(k, v);
      oracle[k] = v;
    } else if (roll < p.insert_weight + p.delete_weight) {
      const uint64_t k = random_present_key();
      ASSERT_TRUE(tree.Erase(k)) << "op " << op;
      oracle.erase(k);
    } else if (roll < p.insert_weight + p.delete_weight + 0.15) {
      // Range scan.
      const uint64_t lo = rng.NextBounded(1u << 24);
      const uint64_t hi = lo + rng.NextBounded(1u << 16);
      std::vector<btree::KeyValue> got;
      tree.Scan(lo, hi, got);
      auto it = oracle.lower_bound(lo);
      size_t i = 0;
      for (; it != oracle.end() && it->first <= hi; ++it, ++i) {
        ASSERT_LT(i, got.size()) << "op " << op;
        ASSERT_EQ(got[i].key, it->first);
      }
      ASSERT_EQ(i, got.size()) << "op " << op;
    } else {
      const uint64_t k = 1 + rng.NextBounded(1u << 24);
      const auto it = oracle.find(k);
      const auto got = tree.Get(k);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << op;
      if (got) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(tree.size(), oracle.size());
    if (op % 1000 == 999) tree.CheckInvariants();
  }
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, BTreeFuzz,
    ::testing::Values(FuzzParam{201, 6000, 0.60, 0.15},
                      FuzzParam{202, 6000, 0.40, 0.35},
                      FuzzParam{203, 4000, 0.80, 0.05}));

class CuckooFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(CuckooFuzz, OpSequenceKeepsOracleAgreement) {
  const auto p = GetParam();
  rtree::NodeArena arena(cuckoo::kChunkSize, 1 << 10);
  cuckoo::CuckooTable table =
      cuckoo::CuckooTable::Create(arena, 4096, p.seed);
  std::unordered_map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(p.seed);
  std::vector<uint64_t> keys;  // sampling pool of present keys

  for (int op = 0; op < p.ops; ++op) {
    const double roll = rng.NextDouble();
    if (roll < p.insert_weight || oracle.empty()) {
      // Cap load below the displacement ceiling.
      if (oracle.size() <
          table.capacity() * 8 / 10) {
        const uint64_t k = 1 + rng.NextBounded(1u << 28);
        const uint64_t v = rng.Next();
        ASSERT_TRUE(table.Put(k, v)) << "op " << op;
        if (oracle.emplace(k, v).second) {
          keys.push_back(k);
        } else {
          oracle[k] = v;
        }
      }
    } else if (roll < p.insert_weight + p.delete_weight && !keys.empty()) {
      const size_t pick = rng.NextBounded(keys.size());
      const uint64_t k = keys[pick];
      keys[pick] = keys.back();
      keys.pop_back();
      if (oracle.erase(k)) {
        ASSERT_TRUE(table.Erase(k)) << "op " << op;
      }
    } else {
      const uint64_t k = 1 + rng.NextBounded(1u << 28);
      const auto it = oracle.find(k);
      const auto got = table.Get(k);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << op;
      if (got) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(table.size(), oracle.size()) << "op " << op;
  }
  // Full sweep at the end.
  for (const auto& [k, v] : oracle) ASSERT_EQ(table.Get(k), v);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, CuckooFuzz,
    ::testing::Values(FuzzParam{301, 8000, 0.60, 0.20},
                      FuzzParam{302, 8000, 0.45, 0.40},
                      FuzzParam{303, 6000, 0.90, 0.05}));

// ---------------------------------------------------------------------------
// Bootstrap hello decoders: the handshake parses bytes straight off a
// socket, so it must shrug off anything — truncations, bit flips, pure
// noise — by returning nullopt, never by over-reading (ASan checks) or
// crashing.
// ---------------------------------------------------------------------------

TEST(BootstrapFuzz, RandomBlobsNeverCrashDecoders) {
  Xoshiro256 rng(401);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> blob(rng.NextBounded(128));
    for (auto& b : blob) {
      b = static_cast<std::byte>(rng.Next() & 0xff);
    }
    // Any decode result is acceptable; surviving the bytes is the test.
    (void)DecodeClientHello(blob);
    (void)DecodeServerHello(blob);
  }
}

TEST(BootstrapFuzz, MutatedClientHelloNeverOverReads) {
  Xoshiro256 rng(402);
  WireClientHello hello;
  hello.node_name = "client-under-test";
  hello.qp_num = 17;
  hello.response_ring_rkey = 3;
  hello.response_ring_capacity = 1 << 18;
  hello.request_ack_rkey = 4;
  const auto valid = Encode(hello);
  ASSERT_TRUE(DecodeClientHello(valid).has_value());

  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = valid;
    // Flip a handful of bits, sometimes truncate, sometimes extend.
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    const uint64_t shape = rng.NextBounded(4);
    if (shape == 1) {
      mutated.resize(rng.NextBounded(mutated.size() + 1));
    } else if (shape == 2) {
      mutated.resize(mutated.size() + 1 + rng.NextBounded(16),
                     std::byte{0x5a});
    }
    const auto decoded = DecodeClientHello(mutated);
    if (decoded.has_value()) {
      // A surviving decode must carry a name bounded by the input: the
      // string length word can lie, but the decoder must not.
      EXPECT_LE(decoded->node_name.size(), mutated.size());
    }
  }
}

TEST(BootstrapFuzz, MutatedServerHelloDecodesOrRejects) {
  Xoshiro256 rng(403);
  WireServerHello hello;
  hello.arena_rkey = 1;
  hello.arena_length = 1 << 20;
  hello.request_ring_rkey = 2;
  hello.request_ring_capacity = 4096;
  hello.generation = 5;
  const auto valid = Encode(hello);
  ASSERT_TRUE(DecodeServerHello(valid).has_value());

  for (int iter = 0; iter < 2000; ++iter) {
    auto mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    if (rng.NextBounded(3) == 0) {
      mutated.resize(rng.NextBounded(mutated.size() + 1));
      // The server hello is fixed-size: any truncation must be rejected.
      if (mutated.size() != valid.size()) {
        EXPECT_FALSE(DecodeServerHello(mutated).has_value());
        continue;
      }
    }
    (void)DecodeServerHello(mutated);
  }
}

// ---------------------------------------------------------------------------
// WAL decoder: recovery feeds it whatever a crash left on disk, so it
// must return the longest valid record prefix for ANY input — bit flips
// in length/CRC/LSN fields, mid-record truncation, pure noise — without
// crashing or over-reading, and a surviving prefix must re-encode to the
// exact bytes it was decoded from (no silent reinterpretation).
// ---------------------------------------------------------------------------

std::vector<std::byte> RandomWalImage(Xoshiro256& rng, size_t records) {
  std::vector<std::byte> image;
  for (size_t i = 0; i < records; ++i) {
    durable::WalRecord rec;
    rec.lsn = i + 1;
    rec.op = rng.NextBounded(2) == 0 ? durable::WalOp::kInsert
                                     : durable::WalOp::kDelete;
    rec.client_gen = rng.Next();
    rec.req_id = rng.Next();
    rec.rect = RandomRect(rng, 0.1);
    rec.rect_id = rng.Next();
    durable::EncodeWalRecord(rec, image);
  }
  return image;
}

TEST(WalFuzz, RandomNoiseNeverCrashesDecoder) {
  Xoshiro256 rng(501);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> blob(rng.NextBounded(4 * durable::kWalFrameBytes));
    for (auto& b : blob) {
      b = static_cast<std::byte>(rng.Next() & 0xff);
    }
    const auto decoded = durable::DecodeWalStream(blob);
    // Bookkeeping must stay consistent whatever the input.
    EXPECT_EQ(decoded.valid_bytes + decoded.truncated_bytes, blob.size());
    EXPECT_EQ(decoded.records.size() * durable::kWalFrameBytes,
              decoded.valid_bytes);
  }
}

TEST(WalFuzz, MutatedStreamsYieldExactValidPrefix) {
  Xoshiro256 rng(502);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t records = 1 + rng.NextBounded(6);
    const auto valid = RandomWalImage(rng, records);
    auto mutated = valid;

    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    const uint64_t shape = rng.NextBounded(4);
    if (shape == 1) {
      mutated.resize(rng.NextBounded(mutated.size() + 1));  // truncate
    } else if (shape == 2) {
      mutated.resize(mutated.size() + 1 + rng.NextBounded(32),
                     std::byte{0x5a});  // torn garbage tail
    }

    const auto decoded = durable::DecodeWalStream(mutated);
    ASSERT_EQ(decoded.valid_bytes + decoded.truncated_bytes, mutated.size());
    ASSERT_LE(decoded.valid_bytes, mutated.size());
    ASSERT_EQ(decoded.records.size() * durable::kWalFrameBytes,
              decoded.valid_bytes);
    // The accepted prefix must round-trip byte-for-byte: whatever the
    // decoder kept is real records, not a lucky reinterpretation of
    // corrupt bytes (CRC makes this overwhelmingly likely; asserting it
    // catches any framing bug that resynchronizes mid-stream).
    std::vector<std::byte> reencoded;
    for (const auto& rec : decoded.records) {
      durable::EncodeWalRecord(rec, reencoded);
    }
    ASSERT_EQ(reencoded,
              std::vector<std::byte>(
                  mutated.begin(),
                  mutated.begin() +
                      static_cast<ptrdiff_t>(decoded.valid_bytes)));
    // LSNs in the prefix are contiguous from 1 (the stream started
    // there and the decoder never skips).
    for (size_t i = 0; i < decoded.records.size(); ++i) {
      ASSERT_EQ(decoded.records[i].lsn, i + 1);
    }
  }
}

TEST(WalFuzz, MidRecordTruncationKeepsCompleteRecordsOnly) {
  Xoshiro256 rng(503);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t records = 1 + rng.NextBounded(5);
    const auto image = RandomWalImage(rng, records);
    const size_t cut = rng.NextBounded(image.size() + 1);
    const std::vector<std::byte> torn(image.begin(),
                                      image.begin() +
                                          static_cast<ptrdiff_t>(cut));
    const auto decoded = durable::DecodeWalStream(torn);
    EXPECT_EQ(decoded.records.size(), cut / durable::kWalFrameBytes);
    EXPECT_EQ(decoded.valid_bytes,
              (cut / durable::kWalFrameBytes) * durable::kWalFrameBytes);
    EXPECT_EQ(decoded.clean, cut % durable::kWalFrameBytes == 0);
  }
}

// ---------------------------------------------------------------------------
// Shard-map decoder: the routing table rides the bootstrap hello, so a
// client decodes it from whatever a (possibly hostile or mid-crash)
// server sent. The decoder must be total — typed rejection, no
// over-reads, no allocation proportional to unvalidated claims — and a
// failed decode must leave the output untouched.
// ---------------------------------------------------------------------------

shard::ShardMap FuzzSampleMap(Xoshiro256& rng) {
  std::vector<rtree::Entry> items;
  const size_t n = 16 + rng.NextBounded(64);
  for (uint64_t i = 0; i < n; ++i) {
    items.push_back({RandomRect(rng, 0.05), i});
  }
  auto map = shard::BuildGridMap(
      items, 1 + static_cast<uint32_t>(rng.NextBounded(8)));
  map.version = 1 + rng.NextBounded(100);
  for (auto& s : map.shards) {
    s.generation = 1 + rng.NextBounded(10);
    s.arena_rkey = static_cast<uint32_t>(rng.Next());
  }
  return map;
}

TEST(ShardMapFuzz, RandomBlobsNeverCrashDecoder) {
  Xoshiro256 rng(601);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::byte> blob(rng.NextBounded(512));
    for (auto& b : blob) b = static_cast<std::byte>(rng.Next() & 0xff);
    shard::ShardMap out;
    const auto st = shard::DecodeShardMap(blob, out);
    if (st == shard::MapDecodeStatus::kOk) {
      // Anything that survives must satisfy the structural invariants.
      EXPECT_TRUE(out.Valid());
    }
  }
}

TEST(ShardMapFuzz, MutatedMapsDecodeExactlyOrRejectTyped) {
  Xoshiro256 rng(602);
  for (int iter = 0; iter < 1500; ++iter) {
    const auto map = FuzzSampleMap(rng);
    auto bytes = shard::EncodeShardMap(map);
    const int flips = 1 + static_cast<int>(rng.NextBounded(6));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    const uint64_t shape = rng.NextBounded(4);
    if (shape == 1) {
      bytes.resize(rng.NextBounded(bytes.size() + 1));
    } else if (shape == 2) {
      bytes.resize(bytes.size() + 1 + rng.NextBounded(32), std::byte{0x5a});
    }
    shard::ShardMap out;
    out.version = 0xdead;  // sentinel: only kOk may overwrite
    const auto st = shard::DecodeShardMap(bytes, out);
    if (st == shard::MapDecodeStatus::kOk) {
      EXPECT_TRUE(out.Valid());
      // A surviving decode carries names bounded by the input (the
      // length words can lie; the decoder must not).
      for (const auto& s : out.shards) {
        EXPECT_LE(s.node_name.size(), bytes.size());
      }
    } else {
      EXPECT_EQ(out.version, 0xdeadu);
    }
  }
}

TEST(ShardMapFuzz, TruncationOfEveryValidMapIsTyped) {
  Xoshiro256 rng(603);
  for (int iter = 0; iter < 200; ++iter) {
    const auto bytes = shard::EncodeShardMap(FuzzSampleMap(rng));
    const size_t cut = rng.NextBounded(bytes.size());
    shard::ShardMap out;
    EXPECT_EQ(shard::DecodeShardMap(
                  std::span<const std::byte>(bytes.data(), cut), out),
              shard::MapDecodeStatus::kTruncated);
  }
}

TEST(ShardMapFuzz, ServerHelloWithMutatedExtensionTailNeverOverReads) {
  // The map travels as the hello's opaque extension; fuzz the *combined*
  // frame so length-prefix lies at the hello layer are exercised too.
  Xoshiro256 rng(604);
  WireServerHello hello;
  hello.arena_rkey = 1;
  hello.arena_length = 1 << 20;
  hello.request_ring_rkey = 2;
  hello.request_ring_capacity = 4096;
  hello.generation = 5;
  hello.shard_id = 2;
  auto map_bytes = shard::EncodeShardMap(FuzzSampleMap(rng));
  hello.extension = map_bytes;
  const auto valid = Encode(hello);
  ASSERT_TRUE(DecodeServerHello(valid).has_value());

  for (int iter = 0; iter < 3000; ++iter) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    const uint64_t shape = rng.NextBounded(4);
    if (shape == 1) {
      mutated.resize(rng.NextBounded(mutated.size() + 1));
    } else if (shape == 2) {
      mutated.resize(mutated.size() + 1 + rng.NextBounded(16),
                     std::byte{0x5a});
    }
    const auto decoded = DecodeServerHello(mutated);
    if (!decoded.has_value()) continue;
    EXPECT_LE(decoded->extension.size(), mutated.size());
    shard::ShardMap out;
    (void)shard::DecodeShardMap(decoded->extension, out);
  }
}

// ---------------------------------------------------------------------------
// Replication frame decoders: a follower applies whatever rides the
// batch ring and a primary trusts acks off the ack ring, so both
// decoders must be total — typed rejection for truncation, mutation and
// pure noise; no over-reads; no allocation proportional to a count
// field the CRC has not vouched for.
// ---------------------------------------------------------------------------

msg::ReplBatch FuzzSampleBatch(Xoshiro256& rng) {
  msg::ReplBatch b;
  b.shard = static_cast<uint32_t>(rng.NextBounded(16));
  b.epoch = rng.NextBounded(1'000);
  b.first_lsn = 1 + rng.NextBounded(1'000'000);
  const size_t n = 1 + rng.NextBounded(12);
  for (size_t i = 0; i < n; ++i) {
    msg::ReplRecord r;
    r.op = rng.NextBounded(2) == 0 ? 1 : 2;
    r.client_gen = rng.Next();
    r.req_id = rng.Next();
    r.rect = RandomRect(rng, 0.1);
    r.rect_id = rng.Next();
    b.records.push_back(r);
  }
  return b;
}

TEST(ReplFuzz, RandomBlobsNeverCrashEitherDecoder) {
  Xoshiro256 rng(701);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::byte> blob(rng.NextBounded(512));
    for (auto& b : blob) b = static_cast<std::byte>(rng.Next() & 0xff);
    msg::ReplDecodeStatus ds;
    const auto batch = msg::DecodeReplBatch(blob, &ds);
    if (batch.has_value()) {
      EXPECT_EQ(ds, msg::ReplDecodeStatus::kOk);
      // A surviving batch is structurally bounded by its own frame.
      EXPECT_LE(batch->records.size(), msg::kMaxReplBatchRecords);
      EXPECT_EQ(blob.size(), msg::kReplBatchOverheadBytes +
                                 batch->records.size() *
                                     msg::kReplRecordBytes);
    } else {
      EXPECT_NE(ds, msg::ReplDecodeStatus::kOk);
    }
    (void)msg::DecodeReplAck(blob);
  }
}

TEST(ReplFuzz, MutatedBatchesRoundTripExactlyOrRejectTyped) {
  Xoshiro256 rng(702);
  for (int iter = 0; iter < 1500; ++iter) {
    const auto batch = FuzzSampleBatch(rng);
    auto bytes = msg::Encode(batch);
    const int flips = 1 + static_cast<int>(rng.NextBounded(6));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    const uint64_t shape = rng.NextBounded(4);
    if (shape == 1) {
      bytes.resize(rng.NextBounded(bytes.size() + 1));  // truncate
    } else if (shape == 2) {
      bytes.resize(bytes.size() + 1 + rng.NextBounded(32),
                   std::byte{0x5a});  // garbage tail
    }
    msg::ReplDecodeStatus ds;
    const auto decoded = msg::DecodeReplBatch(bytes, &ds);
    if (decoded.has_value()) {
      // Whatever survives must re-encode to the exact bytes it came
      // from — the CRC makes a silent reinterpretation overwhelmingly
      // unlikely, and this catches any decoder that resynchronizes.
      EXPECT_EQ(msg::Encode(*decoded), bytes);
    } else {
      EXPECT_NE(ds, msg::ReplDecodeStatus::kOk);
    }
  }
}

TEST(ReplFuzz, MutatedAcksRoundTripExactlyOrRejectTyped) {
  Xoshiro256 rng(703);
  for (int iter = 0; iter < 2000; ++iter) {
    msg::ReplAck ack;
    ack.shard = static_cast<uint32_t>(rng.NextBounded(16));
    ack.epoch = rng.NextBounded(1'000);
    ack.durable_lsn = rng.Next();
    ack.status = static_cast<msg::ReplAckStatus>(rng.NextBounded(3));
    auto bytes = msg::Encode(ack);
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    if (rng.NextBounded(3) == 0) {
      bytes.resize(rng.NextBounded(bytes.size() + 1));
    }
    const auto decoded = msg::DecodeReplAck(bytes);
    if (decoded.has_value()) {
      EXPECT_EQ(msg::Encode(*decoded), bytes);
    }
  }
}

TEST(ReplFuzz, CountFieldLiesAreRejectedBeforeAllocation) {
  // Stamp every possible count into an otherwise valid single-record
  // frame: only the truthful one may decode; lies must reject without
  // reading past the buffer or allocating for the claimed count.
  Xoshiro256 rng(704);
  auto batch = FuzzSampleBatch(rng);
  batch.records.resize(1);
  const auto valid = msg::Encode(batch);
  const size_t count_off = 4 + 2 + 2 + 4 + 8 + 8;
  for (uint32_t lie = 0; lie <= 0xffff; lie += (lie < 1024 ? 1 : 257)) {
    auto bytes = valid;
    const uint16_t c = static_cast<uint16_t>(lie);
    std::memcpy(bytes.data() + count_off, &c, sizeof(c));
    const auto decoded = msg::DecodeReplBatch(bytes);
    if (lie == 1) {
      // Count is CRC-covered, so even the truthful value only decodes
      // with the original CRC — which this is.
      EXPECT_TRUE(decoded.has_value());
    } else {
      EXPECT_FALSE(decoded.has_value()) << "count=" << lie;
    }
  }
}

// ---------------------------------------------------------------------------
// Request decoders with optional tails (trace / deadline) and the
// overload reply: the tails are size-discriminated, so the decoders
// must classify arbitrary lengths without over-reading, and mutated
// valid frames must decode to in-bounds values or reject cleanly.
// ---------------------------------------------------------------------------

TEST(RequestFuzz, RandomBlobsNeverCrashRequestDecoders) {
  Xoshiro256 rng(801);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::byte> blob(rng.NextBounded(96));
    for (auto& b : blob) {
      b = static_cast<std::byte>(rng.Next() & 0xff);
    }
    (void)msg::DecodeSearchRequest(blob);
    (void)msg::DecodeInsertRequest(blob);
    (void)msg::DecodeDeleteRequest(blob);
    (void)msg::DecodeOverloadReply(blob);
  }
}

TEST(RequestFuzz, MutatedDeadlineFramesDecodeOrRejectBySizeAlone) {
  Xoshiro256 rng(802);
  for (int iter = 0; iter < 3000; ++iter) {
    msg::SearchRequest req;
    req.req_id = rng.Next();
    req.rect = geo::Rect{0.1, 0.2, 0.6, 0.7};
    if (rng.NextBounded(2) != 0) {
      req.trace = msg::TraceContext{rng.Next() | 1, 7, 1};
    }
    if (rng.NextBounded(2) != 0) {
      req.deadline_us = rng.Next() | 1;
    }
    auto bytes = msg::Encode(req);
    const size_t valid_size = bytes.size();
    const int flips = 1 + static_cast<int>(rng.NextBounded(6));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(bytes.size());
      bytes[pos] ^= static_cast<std::byte>(1u << rng.NextBounded(8));
    }
    const uint64_t shape = rng.NextBounded(4);
    if (shape == 1) {
      bytes.resize(rng.NextBounded(bytes.size() + 1));  // truncate
    } else if (shape == 2) {
      bytes.resize(bytes.size() + 1 + rng.NextBounded(24),
                   std::byte{0x5a});  // garbage tail
    }
    const auto decoded = msg::DecodeSearchRequest(bytes);
    // Layouts are discriminated by size alone, so an unresized frame
    // must still decode (bit flips change values, never validity), and
    // any frame that decodes must be one of the four legal sizes.
    if (bytes.size() == valid_size) {
      EXPECT_TRUE(decoded.has_value());
    }
    if (decoded.has_value()) {
      const size_t base = 40;
      EXPECT_TRUE(bytes.size() == base ||
                  bytes.size() == base + msg::kDeadlineTailBytes ||
                  bytes.size() == base + msg::kTraceContextBytes ||
                  bytes.size() == base + msg::kTraceContextBytes +
                                      msg::kDeadlineTailBytes);
    }
  }
}

}  // namespace
}  // namespace catfish
